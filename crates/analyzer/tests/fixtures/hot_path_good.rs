//! hot-path-hygiene fixture, clean: the hot chain only does arithmetic;
//! the constructor allocates, but it is not reachable from the root.

pub struct Sink {
    scratch: Vec<u64>,
    acc: u64,
}

impl Sink {
    pub fn new(cap: usize) -> Self {
        Self {
            scratch: Vec::with_capacity(cap),
            acc: 0,
        }
    }

    // HOT: steady-state fixture root.
    pub fn process(&mut self, user: u64, item: u64) {
        self.mix(user ^ item);
    }

    fn mix(&mut self, v: u64) {
        self.acc ^= v.rotate_left(17);
    }
}
