// Fixture: ordering-audit must stay silent — every site is justified.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // ORDERING: relaxed-ok — advisory monotone counter, exact only at
    // quiescence where thread join provides the happens-before edge.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Release); // ORDERING: publishes the init above
}

pub fn cas(slot: &AtomicU64) {
    // ORDERING: relaxed-ok (Relaxed/Relaxed) — retry loop carries no payload; the RMW
    // total order alone picks the winner.
    let _ = slot.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}

pub fn in_string() -> &'static str {
    "Ordering::SeqCst inside a string literal must not trip the lint"
}
