// Fixture: ordering-audit must fire — no ORDERING: justification in range.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // This comment is not a justification.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &AtomicU64) {
    // ORDERING: this block is too far away from the site to count.
    let _ = 1;
    let _ = 2;
    let _ = 3;
    flag.store(1, Ordering::Release);
}
