//! atomic-protocol fixture, clean: the Release store pairs with an
//! Acquire load on the same field, and the Relaxed-only counter carries
//! a `relaxed-ok` justification.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Publisher {
    head: AtomicUsize,
}

impl Publisher {
    pub fn publish(&self, v: usize) {
        // ORDERING: Release — pairs with the Acquire load in read(); makes
        // everything written before publish() visible to the reader.
        self.head.store(v, Ordering::Release);
    }

    pub fn read(&self) -> usize {
        // ORDERING: Acquire — pairs with the Release store in publish().
        self.head.load(Ordering::Acquire)
    }
}

pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        // ORDERING: relaxed-ok — monotonic statistics counter; nothing is
        // published through it and readers tolerate stale values.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
