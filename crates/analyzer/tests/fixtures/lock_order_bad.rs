//! lock-order fixture: a deadlock-potential cycle that only appears
//! interprocedurally. `forward()` holds `a` while calling `bump_b()`,
//! which acquires `b` (edge a → b); `backward()` acquires them in the
//! opposite order directly (edge b → a).

pub struct Pair {
    a: parking_lot::Mutex<u32>,
    b: parking_lot::Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let mut a = self.a.lock();
        *a += 1;
        self.bump_b();
    }

    fn bump_b(&self) {
        let mut b = self.b.lock();
        *b += 1;
    }

    pub fn backward(&self) {
        let b = self.b.lock();
        let a = self.a.lock();
        drop(a);
        drop(b);
    }
}
