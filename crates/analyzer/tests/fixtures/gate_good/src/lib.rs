//! Fixture crate root: unsafe-gate must stay silent.
#![forbid(unsafe_code)]

pub fn f() -> u32 {
    1
}
