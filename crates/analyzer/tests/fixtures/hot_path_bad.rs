//! hot-path-hygiene fixture: the allocation is one call away from the
//! annotated root — `process` is clean itself, but `record` builds a
//! `format!` string per edge.

pub struct Sink {
    keys: Vec<String>,
}

impl Sink {
    // HOT: steady-state fixture root.
    pub fn process(&mut self, user: u64, item: u64) {
        self.record(user, item);
    }

    fn record(&mut self, user: u64, item: u64) {
        let key = format!("{user}:{item}");
        self.keys.push(key);
    }
}
