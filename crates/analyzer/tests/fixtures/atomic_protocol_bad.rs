//! atomic-protocol fixture: two violations.
//!
//! * `Publisher::head` does a `Release` store but no function ever loads
//!   it with `Acquire` or stronger — the release publishes to nobody.
//! * `Counter::hits` is touched with `Relaxed` only and no site carries
//!   an `// ORDERING: relaxed-ok` justification.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Publisher {
    head: AtomicUsize,
}

impl Publisher {
    pub fn publish(&self, v: usize) {
        self.head.store(v, Ordering::Release);
    }

    pub fn peek(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }
}

pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
