// Fixture: serde-sync must stay silent — both impls cover exactly the
// struct's fields, and the Error::custom literal is not mistaken for a key.
pub struct Checkpoint {
    store: Vec<u8>,
    total: f64,
}

impl serde::Serialize for Checkpoint {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("store".to_string(), self.store.serialize_value()),
            ("total".to_string(), self.total.serialize_value()),
        ])
    }
}

impl serde::Deserialize for Checkpoint {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected Checkpoint map"))?;
        Ok(Self {
            store: Vec::deserialize_value(serde::map_field(map, "store")?)?,
            total: f64::deserialize_value(serde::map_field(map, "total")?)?,
        })
    }
}
