//! Workspace-level function index and conservative call resolution.
//!
//! [`Workspace::build`] parses every **library** source file (tests,
//! benches and binaries are out of scope for the semantic passes — they
//! may allocate and panic freely) into [`FnFact`]s and indexes them by
//! name and by `impl` subject.
//!
//! Resolution is deliberately under-approximate — with no type
//! information, a wrong edge is worse than a missing one for the
//! lock-order pass (phantom cycles), while the hot-path pass prefers
//! recall. Hence two modes:
//!
//! * [`Workspace::resolve_strict`] — only edges that are almost certainly
//!   real: `Type::name(…)` / `Self::name(…)` through the impl index,
//!   `self.name(…)` within the caller's own impl, and *bare* calls whose
//!   name is globally unique in the workspace. Method calls on any other
//!   receiver never resolve strictly — `guard.add(…)` on a lock guard
//!   dispatches to the locked type, not to a same-named workspace fn.
//! * [`Workspace::resolve_broad`] — strict, plus: an unresolved call
//!   fans out to *every* same-named workspace function, provided there
//!   are at most [`BROAD_FANOUT_CAP`] candidates (common names like
//!   `len` or `get` would otherwise connect everything to everything).

use crate::parser::{parse_file, CallSite, FnFact};
use crate::{Category, SourceFile};
use std::collections::{HashMap, VecDeque};

/// Maximum candidate set size for broad (name-only) resolution; above
/// this the name is considered too generic to produce useful edges.
pub const BROAD_FANOUT_CAP: usize = 8;

/// Method names that are almost certainly std iterator/container/Option
/// combinators when they appear as `.name(…)` on a non-`self` receiver.
/// Broad resolution refuses to fan these out to same-named workspace
/// functions (strict resolution — `self.`/`Type::` — still works).
const STD_METHOD_NAMES: [&str; 42] = [
    "all",
    "any",
    "parse",
    "spawn",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "for_each",
    "take",
    "take_while",
    "skip",
    "skip_while",
    "zip",
    "chain",
    "rev",
    "enumerate",
    "find",
    "find_map",
    "position",
    "count",
    "sum",
    "product",
    "min",
    "max",
    "last",
    "nth",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "get",
    "contains",
    "extend",
    "push",
    "insert",
    "remove",
    "clear",
    "default",
    "join",
];

/// All library functions of the workspace, with lookup indices.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every function fact; `FnFact::file` indexes the caller's source
    /// list (the same one passed to [`Workspace::build`]).
    pub fns: Vec<FnFact>,
    by_name: HashMap<String, Vec<usize>>,
    by_impl: HashMap<(String, String), Vec<usize>>,
}

impl Workspace {
    /// Parses facts out of every `Category::Lib` file in `sources` and
    /// builds the indices. File indices in the returned facts refer to
    /// positions in `sources`.
    #[must_use]
    pub fn build(sources: &[SourceFile]) -> Self {
        let mut ws = Self::default();
        for (idx, src) in sources.iter().enumerate() {
            if src.category != Category::Lib {
                continue;
            }
            ws.fns.extend(parse_file(idx, src));
        }
        for (i, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(t) = &f.impl_type {
                ws.by_impl
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        ws
    }

    /// Functions named `name` anywhere in the workspace.
    #[must_use]
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Functions named `name` in impls/traits of `subject`.
    #[must_use]
    pub fn by_impl(&self, subject: &str, name: &str) -> &[usize] {
        self.by_impl
            .get(&(subject.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// High-confidence resolution of `call` made from `caller` (an index
    /// into [`Workspace::fns`]). Empty when uncertain.
    #[must_use]
    pub fn resolve_strict(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let caller_impl = self.fns[caller].impl_type.as_deref();
        if let Some(qual) = &call.qual {
            let subject = if qual == "Self" {
                match caller_impl {
                    Some(t) => t,
                    None => return Vec::new(),
                }
            } else {
                qual.as_str()
            };
            return self.by_impl(subject, &call.name).to_vec();
        }
        if call.is_method {
            if call.receiver_is_self {
                if let Some(t) = caller_impl {
                    return self.by_impl(t, &call.name).to_vec();
                }
            }
            // Method on any other receiver: never strict. Even a globally
            // unique name is untrustworthy here — `guard.add(…)` on a
            // lock guard dispatches to the locked type, and resolving it
            // by name alone manufactures phantom lock-order edges.
            return Vec::new();
        }
        // Bare call: trust the name only when it is globally unique.
        let all = self.by_name(&call.name);
        if all.len() == 1 {
            all.to_vec()
        } else {
            Vec::new()
        }
    }

    /// Recall-leaning resolution: strict, else every same-named function
    /// when the candidate set is small enough to be meaningful. Two
    /// fan-out guards keep the phantom-edge rate down:
    ///
    /// * a *qualified* call that missed the impl index targets a type
    ///   outside the workspace facts (`f64::from_bits`, `std::mem::take`)
    ///   — resolving it by bare name would wire std calls to unrelated
    ///   workspace functions;
    /// * method calls named like std iterator/container combinators
    ///   (`.all(…)`, `.take(…)`, `.len()`) almost always *are* the std
    ///   method, not a workspace fn that happens to share the name.
    #[must_use]
    pub fn resolve_broad(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let strict = self.resolve_strict(caller, call);
        if !strict.is_empty() {
            return strict;
        }
        if call.qual.is_some() {
            return Vec::new();
        }
        if call.is_method && STD_METHOD_NAMES.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let all = self.by_name(&call.name);
        if !all.is_empty() && all.len() <= BROAD_FANOUT_CAP {
            all.to_vec()
        } else {
            Vec::new()
        }
    }

    /// BFS over broad call edges from `roots`; returns, for every
    /// reachable function, the index of the root it was first reached
    /// from (roots map to themselves).
    #[must_use]
    pub fn reachable_broad(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut witness: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if witness.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            let root = witness.get(&at).copied().unwrap_or(at);
            // Indices stay valid across the loop; clone the call list to
            // appease the borrow on `self.fns`.
            let calls: Vec<CallSite> = self.fns[at].calls.clone();
            for call in &calls {
                for next in self.resolve_broad(at, call) {
                    if let std::collections::hash_map::Entry::Vacant(e) = witness.entry(next) {
                        e.insert(root);
                        queue.push_back(next);
                    }
                }
            }
        }
        witness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::lexer::lex;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_string(),
            category: classify(path),
            lexed: lex(text),
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    fn ws(text: &str) -> Workspace {
        Workspace::build(&[src("crates/x/src/lib.rs", text)])
    }

    fn idx(ws: &Workspace, qualified: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qualified() == qualified)
            .expect("fn present")
    }

    #[test]
    fn strict_resolves_self_methods_and_quals() {
        let w = ws(
            "impl E {\n    fn a(&self) { self.b(); E::c(); Self::c(); }\n    fn b(&self) {}\n    fn c() {}\n}\n",
        );
        let a = idx(&w, "E::a");
        let resolved: Vec<String> = w.fns[a]
            .calls
            .iter()
            .flat_map(|c| w.resolve_strict(a, c))
            .map(|i| w.fns[i].qualified())
            .collect();
        assert_eq!(resolved, ["E::b", "E::c", "E::c"]);
    }

    #[test]
    fn strict_resolves_globally_unique_bare_calls() {
        let w = ws("fn a() { helper(); }\nfn helper() {}\n");
        let a = idx(&w, "a");
        let r = w.resolve_strict(a, &w.fns[a].calls[0]);
        assert_eq!(r.len(), 1);
        assert_eq!(w.fns[r[0]].name, "helper");
    }

    #[test]
    fn strict_refuses_ambiguous_names() {
        let w = ws(
            "impl A {\n    fn go(&self) {}\n}\nimpl B {\n    fn go(&self) {}\n}\nfn f(x: &A) { x.go(); }\n",
        );
        let f = idx(&w, "f");
        assert!(w.resolve_strict(f, &w.fns[f].calls[0]).is_empty());
        // Broad mode fans out to both.
        assert_eq!(w.resolve_broad(f, &w.fns[f].calls[0]).len(), 2);
    }

    #[test]
    fn broad_refuses_qualified_calls_to_unknown_types() {
        // `f64::from_bits(x)` / `std::mem::take(x)` must not fan out by
        // bare name to same-named workspace fns.
        let w = ws(
            "fn f(x: u64) { f64::from_bits(x); }\nimpl B {\n    fn from_bits(x: u64) -> B { B }\n}\n",
        );
        let f = idx(&w, "f");
        assert_eq!(w.fns[f].calls[0].qual.as_deref(), Some("f64"));
        assert!(w.resolve_broad(f, &w.fns[f].calls[0]).is_empty());
    }

    #[test]
    fn broad_refuses_std_combinator_method_names() {
        // `.all(…)` on an iterator must not resolve to a workspace fn
        // that happens to be named `all`.
        let w = ws(
            "fn f(v: &[u32]) -> bool { v.iter().all(|x| *x > 0) }\nimpl Set {\n    fn all() -> Vec<u32> { Vec::new() }\n}\n",
        );
        let f = idx(&w, "f");
        let all_call = w.fns[f]
            .calls
            .iter()
            .find(|c| c.name == "all")
            .expect("`.all(` collected");
        assert!(w.resolve_broad(f, all_call).is_empty());
        // `.spawn(…)` on a thread scope and `.parse(…)` on a str are the
        // same phantom-chain class: std methods whose names workspace
        // constructors also use (`serve::spawn`, `Cli::parse`).
        let w3 = ws(
            "fn f(s: &S) { s.spawn(|| {}); \"1\".parse::<u64>(); }\nimpl T {\n    fn spawn() {}\n    fn parse() {}\n}\n",
        );
        let f3 = idx(&w3, "f");
        for call in &w3.fns[f3].calls {
            if call.name == "spawn" || call.name == "parse" {
                assert!(w3.resolve_broad(f3, call).is_empty(), "{}", call.name);
            }
        }
        // But a non-combinator method name still fans out.
        let w2 = ws("fn f(s: &Store) { s.warm(); }\nimpl Store {\n    fn warm(&self) {}\n}\n");
        let f2 = idx(&w2, "f");
        assert_eq!(w2.resolve_broad(f2, &w2.fns[f2].calls[0]).len(), 1);
    }

    #[test]
    fn reachability_with_root_witness() {
        let w = ws("fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n");
        let root = idx(&w, "root");
        let map = w.reachable_broad(&[root]);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&idx(&w, "leaf")), Some(&root));
        assert!(!map.contains_key(&idx(&w, "island")));
    }

    #[test]
    fn non_lib_files_are_excluded() {
        let w = Workspace::build(&[src("crates/x/src/main.rs", "fn main() {}\n")]);
        assert!(w.fns.is_empty());
    }
}
