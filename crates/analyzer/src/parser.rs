//! A brace-matched item parser on top of [`crate::lexer`] — the semantic
//! layer's view of a source file.
//!
//! The lexer classifies bytes; this module recovers *items*: every `fn`
//! with its body span, the `impl`/`trait` block it lives in, and the
//! per-function facts the interprocedural passes consume —
//!
//! * **atomics touched**: receiver field, operation kind (load / store /
//!   RMW) and the `Ordering` argument(s) of every atomic call site;
//! * **locks acquired**: every `.lock()` / `.read()` / `.write()` with the
//!   byte span the guard is held over (end of the enclosing block for
//!   `let`-bound guards, end of the statement for temporaries);
//! * **allocation-shaped expressions**: `vec!` / `format!` / `Box::new` /
//!   `.clone()` / `.collect()` and friends, for the hot-path pass;
//! * **outgoing calls**: callee name plus enough context (method vs free,
//!   `Type::` qualifier, `self.` receiver) for conservative resolution.
//!
//! Everything is heuristic text analysis over the scrubbed view — no type
//! information, no `syn` (the build is offline). The call-graph layer in
//! [`crate::callgraph`] documents the resolution rules and their
//! deliberate under-approximation.

use crate::lexer::Comment;
use crate::passes::{is_ident, match_delim, skip_ws, test_mod_line_ranges};
use crate::SourceFile;

/// A half-open byte range into a file's scrubbed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Whether `offset` falls inside the span.
    #[must_use]
    pub fn contains(&self, offset: usize) -> bool {
        (self.start..self.end).contains(&offset)
    }

    /// Span length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// What an atomic call site does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// Pure read (`load`, or the failure ordering of a CAS).
    Load,
    /// Pure write (`store`).
    Store,
    /// Read-modify-write (`fetch_*`, `swap`, CAS success ordering).
    Rmw,
}

/// One (kind, ordering) fact of an atomic call site. A `compare_exchange`
/// contributes two: the success ordering as [`AtomicKind::Rmw`] and the
/// failure ordering as [`AtomicKind::Load`].
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Receiver's final segment (`self.words[i].load(…)` → `words`).
    pub field: String,
    /// Whether the receiver chain starts at `self`.
    pub via_self: bool,
    /// What the operation does.
    pub kind: AtomicKind,
    /// The `Ordering::` variant name (`Relaxed`, `Acquire`, …).
    pub ordering: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether an `// ORDERING: relaxed-ok …` block justifies this site.
    pub relaxed_ok: bool,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()`, parking_lot
/// style — empty argument list).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver's final segment (`self.slices.read()` → `slices`).
    pub name: String,
    /// Whether the receiver chain starts at `self`.
    pub via_self: bool,
    /// `lock`, `read` or `write`.
    pub method: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// Byte offset of the call in the scrubbed text.
    pub offset: usize,
    /// One past the last byte over which the guard is conservatively held:
    /// the enclosing block for `let`-bound guards, the statement for
    /// temporaries.
    pub hold_end: usize,
}

/// One allocation-shaped expression (for the hot-path pass).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// The matched construct, e.g. `vec!` or `clone`.
    pub what: &'static str,
    /// 1-based source line.
    pub line: usize,
}

/// One outgoing call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (final path segment).
    pub name: String,
    /// `Type` of a `Type::name(…)` call (with `Self` left as written).
    pub qual: Option<String>,
    /// Whether the call is a method call (`recv.name(…)`).
    pub is_method: bool,
    /// Whether the method receiver is exactly `self`.
    pub receiver_is_self: bool,
    /// 1-based source line.
    pub line: usize,
    /// Byte offset of the callee name in the scrubbed text.
    pub offset: usize,
}

/// One `fn` item with its extracted facts.
#[derive(Debug)]
pub struct FnFact {
    /// Index of the containing file in the pass's source list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Name of the enclosing `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body span in the scrubbed text (`None` for bodyless trait methods).
    pub body: Option<Span>,
    /// Whether a `// HOT` annotation marks this function as a hot-path
    /// root.
    pub hot: bool,
    /// Atomic operations in the body (innermost-function attribution).
    pub atomics: Vec<AtomicSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockSite>,
    /// Allocation-shaped expressions in the body.
    pub allocs: Vec<AllocSite>,
    /// Outgoing calls from the body.
    pub calls: Vec<CallSite>,
}

impl FnFact {
    /// `Type::name` when the function lives in an impl/trait, else `name`.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Atomic methods and how their `Ordering` arguments map to kinds.
const ATOMIC_METHODS: [(&str, AtomicKind); 12] = [
    ("load", AtomicKind::Load),
    ("store", AtomicKind::Store),
    ("swap", AtomicKind::Rmw),
    ("fetch_add", AtomicKind::Rmw),
    ("fetch_sub", AtomicKind::Rmw),
    ("fetch_or", AtomicKind::Rmw),
    ("fetch_and", AtomicKind::Rmw),
    ("fetch_xor", AtomicKind::Rmw),
    ("fetch_nand", AtomicKind::Rmw),
    ("fetch_max", AtomicKind::Rmw),
    ("fetch_min", AtomicKind::Rmw),
    ("compare_exchange", AtomicKind::Rmw),
];

/// Two-ordering atomic methods: first `Ordering` is the RMW/success side,
/// second is the failure/fetch load side.
const TWO_ORDERING_METHODS: [&str; 3] =
    ["compare_exchange", "compare_exchange_weak", "fetch_update"];

/// Lock-acquisition methods (parking_lot / std guard style, no arguments).
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Allocation-shaped constructs searched with identifier boundaries.
const ALLOC_WORDS: [&str; 13] = [
    "format!",
    "vec!",
    "Box::new",
    "Arc::new",
    "Rc::new",
    "String::new",
    "String::from",
    "String::with_capacity",
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "VecDeque::with_capacity",
    "Box::default",
];

/// Allocation-shaped method calls searched as exact substrings (the
/// leading `.` and trailing `(` make them unambiguous).
const ALLOC_METHODS: [&str; 7] = [
    ".clone(",
    ".to_string(",
    ".to_owned(",
    ".to_vec(",
    ".collect(",
    ".collect::<",
    ".cloned(",
];

/// Keywords that look like call syntax but are not calls.
const KEYWORDS: [&str; 22] = [
    "if", "while", "for", "match", "loop", "return", "as", "in", "move", "fn", "let", "else",
    "await", "box", "unsafe", "ref", "mut", "dyn", "impl", "where", "use", "pub",
];

/// A comment block (consecutive line comments merged), with the markers the
/// semantic passes care about.
struct Block {
    end_line: usize,
    relaxed_ok: bool,
    hot: bool,
}

/// How many lines above a site a justification/annotation block may end
/// (same window as the ordering-audit pass; attributes between the block
/// and the item eat into it).
const WINDOW: usize = 3;

fn coalesce(comments: &[Comment]) -> Vec<Block> {
    let mut blocks: Vec<Block> = Vec::new();
    for c in comments {
        let relaxed_ok = c.text.contains("ORDERING:") && c.text.contains("relaxed-ok");
        let hot = is_hot_marker(&c.text);
        match blocks.last_mut() {
            Some(last) if c.line <= last.end_line + 1 => {
                last.end_line = last.end_line.max(c.end_line);
                last.relaxed_ok |= relaxed_ok;
                last.hot |= hot;
            }
            _ => blocks.push(Block {
                end_line: c.end_line,
                relaxed_ok,
                hot,
            }),
        }
    }
    blocks
}

/// Whether a comment's text carries the `HOT` root marker: some line whose
/// content (after comment punctuation) starts with the word `HOT`.
fn is_hot_marker(text: &str) -> bool {
    text.lines().any(|l| {
        let t = l
            .trim_start_matches(['/', '*', '!', ' ', '\t'])
            .trim_start();
        t.strip_prefix("HOT")
            .is_some_and(|rest| !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_'))
    })
}

fn block_marks(blocks: &[Block], site_line: usize, pick: impl Fn(&Block) -> bool) -> bool {
    blocks
        .iter()
        .any(|b| pick(b) && b.end_line <= site_line && site_line - b.end_line <= WINDOW)
}

/// Parses one file into its functions-with-facts. `file` is the index the
/// caller will use to refer back to the file.
#[must_use]
pub fn parse_file(file: usize, src: &SourceFile) -> Vec<FnFact> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    let blocks = coalesce(&src.lexed.comments);
    let test_ranges = test_mod_line_ranges(&src.lexed);
    let impls = impl_spans(s);

    let mut fns = fn_items(file, src, &impls, &blocks, &test_ranges);
    // Sort by span size ascending so the *first* containing function found
    // for a site is the innermost one (nested fns are smaller).
    let bodies: Vec<Option<Span>> = fns.iter().map(|f| f.body).collect();
    let mut order: Vec<usize> = (0..fns.len()).collect();
    order.sort_by_key(|&i| bodies[i].map_or(0, |b| b.len()));

    let owner_of = move |offset: usize| -> Option<usize> {
        order
            .iter()
            .copied()
            .find(|&i| bodies[i].is_some_and(|b| b.contains(offset)))
    };

    collect_atomics(src, bytes, &blocks, &mut fns, &owner_of);
    collect_locks(src, bytes, &mut fns, &owner_of);
    collect_allocs(src, s, &mut fns, &owner_of);
    collect_calls(src, bytes, &mut fns, &owner_of);
    fns
}

/// `impl`/`trait` blocks: body span plus the subject type name.
fn impl_spans(s: &str) -> Vec<(Span, String)> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        for at in crate::passes::word_occurrences(s, kw) {
            // Item position only: `-> impl Trait` / `: impl Fn(…)` /
            // `&dyn …` type positions are preceded by punctuation other
            // than an item boundary.
            let mut p = at;
            while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if p > 0 && !matches!(bytes[p - 1], b'{' | b'}' | b';' | b']') {
                continue;
            }
            let Some((body, name)) = parse_impl_header(bytes, s, at + kw.len()) else {
                continue;
            };
            out.push((body, name));
        }
    }
    out
}

/// Parses an impl/trait header starting right after the keyword; returns
/// the subject type name (the type after `for` when present, else the
/// first type path) and the body span.
fn parse_impl_header(bytes: &[u8], s: &str, mut i: usize) -> Option<(Span, String)> {
    i = skip_ws(bytes, i);
    if bytes.get(i) == Some(&b'<') {
        i = skip_angles(bytes, i);
    }
    // Scan the header up to the opening brace, tracking the last `for`
    // keyword at angle-depth 0 so `impl Trait for Type` resolves to Type.
    let brace = find_at_depth(bytes, i, b'{')?;
    let header = &s[i..brace];
    let subject = match split_for(header) {
        Some(after_for) => first_path_segment(after_for),
        None => first_path_segment(header),
    }?;
    let end = match_delim(bytes, brace);
    Some((Span { start: brace, end }, subject))
}

/// Finds ` for ` at angle-depth 0 in an impl header and returns the text
/// after it.
fn split_for(header: &str) -> Option<&str> {
    let bytes = header.as_bytes();
    for at in crate::passes::word_occurrences(header, "for") {
        let mut depth = 0usize;
        for &b in &bytes[..at] {
            match b {
                b'<' => depth += 1,
                b'>' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if depth == 0 {
            return Some(&header[at + 3..]);
        }
    }
    None
}

/// The last identifier of the first type path in `text`, stopping at `<`,
/// `where` or the end (`graphstream::SnapshotError` → `SnapshotError`).
fn first_path_segment(text: &str) -> Option<String> {
    let text = text.trim_start();
    let mut last = None;
    let mut i = 0;
    let bytes = text.as_bytes();
    while i < bytes.len() {
        let c = bytes[i];
        if is_ident(c) {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            last = Some(text[start..i].to_string());
        } else if c == b':' {
            i += 1;
        } else {
            break;
        }
    }
    last.filter(|n| n != "where")
}

/// Skips a balanced `<…>` group starting at `open`; `>` preceded by `-` or
/// `=` (arrow / fat-arrow) does not close.
fn skip_angles(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && (bytes[i - 1] == b'-' || bytes[i - 1] == b'=') => {}
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Finds `target` from `i` at bracket-depth 0 (tracking `(` `[` nesting so
/// `-> [u8; 4] {` is not terminated by the inner `;`). Returns its offset.
fn find_at_depth(bytes: &[u8], mut i: usize, target: u8) -> Option<usize> {
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == target && paren == 0 && bracket == 0 {
            return Some(i);
        }
        match c {
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            b'[' => bracket += 1,
            b']' => bracket = bracket.saturating_sub(1),
            b';' if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

fn fn_items(
    file: usize,
    src: &SourceFile,
    impls: &[(Span, String)],
    blocks: &[Block],
    test_ranges: &[(usize, usize)],
) -> Vec<FnFact> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    for at in crate::passes::word_occurrences(s, "fn") {
        let line = src.lexed.line_of(at);
        if crate::passes::in_ranges(test_ranges, line) {
            continue;
        }
        let mut i = skip_ws(bytes, at + 2);
        let name_start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn(u64) -> u64` pointer type, not an item
        }
        let name = s[name_start..i].to_string();
        i = skip_ws(bytes, i);
        if bytes.get(i) == Some(&b'<') {
            i = skip_angles(bytes, i);
            i = skip_ws(bytes, i);
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        i = match_delim(bytes, i);
        // Body: the next `{` at bracket-depth 0 before any terminating `;`.
        let body = find_at_depth(bytes, i, b'{').map(|brace| Span {
            start: brace,
            end: match_delim(bytes, brace),
        });
        let impl_type = impls
            .iter()
            .filter(|(span, _)| span.contains(at))
            .min_by_key(|(span, _)| span.len())
            .map(|(_, name)| name.clone());
        out.push(FnFact {
            file,
            name,
            impl_type,
            line,
            body,
            hot: false,
            atomics: Vec::new(),
            locks: Vec::new(),
            allocs: Vec::new(),
            calls: Vec::new(),
        });
    }
    // A `// HOT` block marks exactly one root: the *next* `fn` item, at
    // most WINDOW lines below (attributes in between eat into the
    // window) — not every function that happens to be nearby.
    for b in blocks.iter().filter(|b| b.hot) {
        if let Some(f) = out
            .iter_mut()
            .filter(|f| f.line >= b.end_line && f.line - b.end_line <= WINDOW)
            .min_by_key(|f| f.line)
        {
            f.hot = true;
        }
    }
    out
}

/// Walks backwards from the `.` of a postfix call, recovering the receiver
/// chain. Returns `(final_segment, chain_starts_at_self)`.
fn receiver_chain(bytes: &[u8], dot: usize, s: &str) -> Option<(String, bool)> {
    let mut i = dot;
    let mut rightmost: Option<(usize, usize)> = None;
    let mut leftmost: Option<(usize, usize)> = None;
    loop {
        let mut j = i;
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == 0 {
            break;
        }
        let c = bytes[j - 1];
        if c == b')' || c == b']' {
            let open = match_delim_back(bytes, j - 1)?;
            j = open;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
        } else if !is_ident(c) {
            break;
        }
        let end = j;
        let mut start = j;
        while start > 0 && is_ident(bytes[start - 1]) {
            start -= 1;
        }
        if start == end {
            return None; // parenthesised expression base: `(a | b).load(…)`
        }
        if rightmost.is_none() {
            rightmost = Some((start, end));
        }
        leftmost = Some((start, end));
        // Continue only across a single `.` (not `..`).
        let mut k = start;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > 0 && bytes[k - 1] == b'.' && !(k > 1 && bytes[k - 2] == b'.') {
            i = k - 1;
        } else {
            break;
        }
    }
    let (rs, re) = rightmost?;
    let via_self = leftmost.is_some_and(|(ls, le)| &s[ls..le] == "self");
    Some((s[rs..re].to_string(), via_self))
}

/// Backward twin of [`match_delim`]: `close` points at `)`/`]`/`}`;
/// returns the offset of the matching opener.
fn match_delim_back(bytes: &[u8], close: usize) -> Option<usize> {
    let (c, o) = match bytes.get(close) {
        Some(b')') => (b')', b'('),
        Some(b']') => (b']', b'['),
        Some(b'}') => (b'}', b'{'),
        _ => return None,
    };
    let mut depth = 0usize;
    let mut i = close + 1;
    while i > 0 {
        i -= 1;
        if bytes[i] == c {
            depth += 1;
        } else if bytes[i] == o {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Occurrences of `.name` (method position) where `(` follows; yields the
/// offset of the `.` and the offset of the opening paren.
fn method_calls<'a>(s: &'a str, name: &'a str) -> impl Iterator<Item = (usize, usize)> + 'a {
    let bytes = s.as_bytes();
    let needle = format!(".{name}");
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(pos) = s[from..].find(&needle) {
            let dot = from + pos;
            from = dot + 1;
            let after = dot + needle.len();
            if bytes.get(after).copied().is_some_and(is_ident) {
                continue; // `.read_to_end(` is not `.read(`
            }
            let paren = skip_ws(bytes, after);
            if bytes.get(paren) == Some(&b'(') {
                return Some((dot, paren));
            }
        }
        None
    })
}

fn collect_atomics(
    src: &SourceFile,
    bytes: &[u8],
    blocks: &[Block],
    fns: &mut [FnFact],
    owner_of: &impl Fn(usize) -> Option<usize>,
) {
    let s = &src.lexed.scrubbed;
    for (method, kind) in ATOMIC_METHODS {
        for (dot, paren) in method_calls(s, method) {
            record_atomic(src, bytes, blocks, fns, owner_of, method, kind, dot, paren);
        }
    }
    for method in ["compare_exchange_weak", "fetch_update"] {
        for (dot, paren) in method_calls(s, method) {
            record_atomic(
                src,
                bytes,
                blocks,
                fns,
                owner_of,
                method,
                AtomicKind::Rmw,
                dot,
                paren,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record_atomic(
    src: &SourceFile,
    bytes: &[u8],
    blocks: &[Block],
    fns: &mut [FnFact],
    owner_of: &impl Fn(usize) -> Option<usize>,
    method: &str,
    kind: AtomicKind,
    dot: usize,
    paren: usize,
) {
    let s = &src.lexed.scrubbed;
    let args_end = match_delim(bytes, paren);
    let args = &s[paren..args_end];
    let orderings = ordering_args(args);
    if orderings.is_empty() {
        return; // `.load(buf)` on a reader, not an atomic
    }
    let Some((field, via_self)) = receiver_chain(bytes, dot, s) else {
        return;
    };
    let Some(owner) = owner_of(dot) else {
        return;
    };
    let line = src.lexed.line_of(dot);
    let relaxed_ok = block_marks(blocks, line, |b| b.relaxed_ok);
    let two = TWO_ORDERING_METHODS.contains(&method);
    for (idx, ordering) in orderings.into_iter().enumerate() {
        let kind = if two && idx == 1 {
            AtomicKind::Load
        } else {
            kind
        };
        fns[owner].atomics.push(AtomicSite {
            field: field.clone(),
            via_self,
            kind,
            ordering,
            line,
            relaxed_ok,
        });
    }
}

/// The `Ordering::X` variant names inside an argument list, in order.
fn ordering_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    for at in crate::passes::word_occurrences(args, "Ordering") {
        let rest = &args[at + "Ordering".len()..];
        let Some(rest) = rest.strip_prefix("::") else {
            continue;
        };
        let end = rest
            .as_bytes()
            .iter()
            .position(|&b| !is_ident(b))
            .unwrap_or(rest.len());
        if end > 0 {
            out.push(rest[..end].to_string());
        }
    }
    out
}

fn collect_locks(
    src: &SourceFile,
    bytes: &[u8],
    fns: &mut [FnFact],
    owner_of: &impl Fn(usize) -> Option<usize>,
) {
    let s = &src.lexed.scrubbed;
    for method in LOCK_METHODS {
        for (dot, paren) in method_calls(s, method) {
            // Lock acquisitions take no arguments; `file.read(&mut buf)`
            // does.
            let close = skip_ws(bytes, paren + 1);
            if bytes.get(close) != Some(&b')') {
                continue;
            }
            let Some((name, via_self)) = receiver_chain(bytes, dot, s) else {
                continue;
            };
            let Some(owner) = owner_of(dot) else {
                continue;
            };
            let bound = is_let_bound(bytes, s, dot);
            let hold_end = hold_span_end(bytes, close + 1, bound);
            fns[owner].locks.push(LockSite {
                name,
                via_self,
                method,
                line: src.lexed.line_of(dot),
                offset: dot,
                hold_end,
            });
        }
    }
}

/// Whether the statement containing the receiver chain that ends at `dot`
/// starts with a `let` binding (guard outlives the statement).
fn is_let_bound(bytes: &[u8], s: &str, dot: usize) -> bool {
    let mut j = dot;
    while j > 0 && !matches!(bytes[j - 1], b';' | b'{' | b'}') {
        j -= 1;
    }
    !crate::passes::word_occurrences(&s[j..dot], "let").is_empty()
}

/// One past the last byte the guard is held over: to the end of the
/// enclosing block (`let`-bound) or of the statement (temporary).
fn hold_span_end(bytes: &[u8], mut i: usize, let_bound: bool) -> usize {
    let mut brace = 0usize;
    let mut paren = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => brace += 1,
            b'}' => {
                if brace == 0 {
                    return i; // enclosing block closes
                }
                brace -= 1;
            }
            b'(' | b'[' => paren += 1,
            b')' | b']' => {
                if paren == 0 {
                    return i; // enclosing argument list closes
                }
                paren -= 1;
            }
            b';' if !let_bound && brace == 0 && paren == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn collect_allocs(
    src: &SourceFile,
    s: &str,
    fns: &mut [FnFact],
    owner_of: &impl Fn(usize) -> Option<usize>,
) {
    for what in ALLOC_WORDS {
        for at in crate::passes::word_occurrences(s, what) {
            if let Some(owner) = owner_of(at) {
                fns[owner].allocs.push(AllocSite {
                    what,
                    line: src.lexed.line_of(at),
                });
            }
        }
    }
    for what in ALLOC_METHODS {
        let mut from = 0;
        while let Some(pos) = s[from..].find(what) {
            let at = from + pos;
            from = at + what.len();
            if let Some(owner) = owner_of(at) {
                fns[owner].allocs.push(AllocSite {
                    what: what
                        .trim_start_matches('.')
                        .trim_end_matches(['(', ':', '<']),
                    line: src.lexed.line_of(at),
                });
            }
        }
    }
}

fn collect_calls(
    src: &SourceFile,
    bytes: &[u8],
    fns: &mut [FnFact],
    owner_of: &impl Fn(usize) -> Option<usize>,
) {
    let s = &src.lexed.scrubbed;
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident(bytes[i]) || (i > 0 && is_ident(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        let name = &s[start..i];
        if bytes.get(i) == Some(&b'!') {
            continue; // macro
        }
        let paren = skip_ws(bytes, i);
        if bytes.get(paren) != Some(&b'(') {
            continue;
        }
        if KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        if LOCK_METHODS.contains(&name) || ATOMIC_METHODS.iter().any(|(m, _)| *m == name) {
            continue; // already captured with more context
        }
        let Some(owner) = owner_of(start) else {
            continue;
        };
        // Context to the left of the name.
        let mut p = start;
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        let (is_method, receiver_is_self, qual) = if p > 0 && bytes[p - 1] == b'.' {
            let recv = receiver_chain(bytes, p - 1, s);
            let is_self = recv.as_ref().is_some_and(|(n, vs)| *vs && n == "self");
            (true, is_self, None)
        } else if p > 1 && bytes[p - 1] == b':' && bytes[p - 2] == b':' {
            let mut qe = p - 2;
            // Skip a `::<…>` turbofish-free path segment: ident only.
            while qe > 0 && bytes[qe - 1].is_ascii_whitespace() {
                qe -= 1;
            }
            let end = qe;
            let mut qs = qe;
            while qs > 0 && is_ident(bytes[qs - 1]) {
                qs -= 1;
            }
            if qs == end {
                (false, false, None)
            } else {
                (false, false, Some(s[qs..end].to_string()))
            }
        } else {
            (false, false, None)
        };
        fns[owner].calls.push(CallSite {
            name: name.to_string(),
            qual,
            is_method,
            receiver_is_self,
            line: src.lexed.line_of(start),
            offset: start,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, lexer::lex};

    fn file(srctext: &str) -> SourceFile {
        SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(srctext),
            lines: srctext.lines().map(str::to_string).collect(),
        }
    }

    fn parse(srctext: &str) -> Vec<FnFact> {
        parse_file(0, &file(srctext))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let fns = parse(
            "impl Engine {\n    fn process(&mut self) {}\n}\nfn free() {}\nimpl Estimator for Engine {\n    fn estimate(&self) -> f64 { 0.0 }\n}\n",
        );
        let quals: Vec<String> = fns.iter().map(FnFact::qualified).collect();
        assert!(quals.contains(&"Engine::process".to_string()), "{quals:?}");
        assert!(quals.contains(&"free".to_string()));
        assert!(
            quals.contains(&"Engine::estimate".to_string()),
            "impl Trait for Type binds to Type: {quals:?}"
        );
    }

    #[test]
    fn impl_in_type_position_is_not_a_block() {
        let fns = parse("fn mk(f: impl Fn(u64) -> u64 + Send) -> u64 { f(1) }\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].impl_type, None);
    }

    #[test]
    fn atomic_site_fields_and_orderings() {
        let fns = parse(
            "impl A {\n    fn get(&self) -> u64 { self.words[0].load(Ordering::Acquire) }\n    fn put(&self) { self.flag.store(1, Ordering::Release); }\n}\n",
        );
        let get = fns.iter().find(|f| f.name == "get").expect("get");
        assert_eq!(get.atomics.len(), 1);
        assert_eq!(get.atomics[0].field, "words");
        assert!(get.atomics[0].via_self);
        assert_eq!(get.atomics[0].kind, AtomicKind::Load);
        assert_eq!(get.atomics[0].ordering, "Acquire");
        let put = fns.iter().find(|f| f.name == "put").expect("put");
        assert_eq!(put.atomics[0].kind, AtomicKind::Store);
        assert_eq!(put.atomics[0].ordering, "Release");
    }

    #[test]
    fn compare_exchange_contributes_rmw_and_load() {
        let fns = parse(
            "fn cas(a: &AtomicU64) { let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n",
        );
        let sites = &fns[0].atomics;
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kind, AtomicKind::Rmw);
        assert_eq!(sites[0].ordering, "AcqRel");
        assert_eq!(sites[1].kind, AtomicKind::Load);
        assert_eq!(sites[1].ordering, "Acquire");
    }

    #[test]
    fn non_atomic_load_is_skipped() {
        let fns = parse("fn f(r: &Reader) { r.load(buffer); }\n");
        assert!(fns[0].atomics.is_empty());
    }

    #[test]
    fn relaxed_ok_marker_is_detected() {
        let fns = parse(
            "fn f(a: &AtomicU64) {\n    // ORDERING: relaxed-ok — advisory counter.\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::Relaxed);\n}\n",
        );
        assert!(fns[0].atomics[0].relaxed_ok);
        assert!(fns[0].atomics[1].relaxed_ok, "window covers the next line");
    }

    #[test]
    fn lock_sites_hold_spans() {
        let src = "impl W {\n    fn go(&self) {\n        { let g = self.slices.write(); g.push(1); }\n        let r = self.slices.read();\n        r.len();\n    }\n}\n";
        let fns = parse(src);
        let locks = &fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:?}");
        let write = locks.iter().find(|l| l.method == "write").expect("write");
        let read = locks.iter().find(|l| l.method == "read").expect("read");
        assert_eq!(write.name, "slices");
        assert!(write.via_self);
        // The write guard's span ends at its inner block, before the read.
        assert!(write.hold_end < read.offset, "{write:?} vs {read:?}");
        // The read guard (fn-level let) is held to the end of the body.
        assert!(read.hold_end > read.offset);
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = "impl M {\n    fn add(&self) {\n        self.shard(7).lock().add(7, 1.0);\n        self.other.lock().get(1);\n    }\n}\n";
        let fns = parse(src);
        let locks = &fns[0].locks;
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].name, "shard");
        // First temporary's span must end before the second acquisition.
        assert!(locks[0].hold_end < locks[1].offset, "{locks:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let fns = parse("fn f(r: &mut File, buf: &mut [u8]) { r.read(buf); }\n");
        assert!(fns[0].locks.is_empty());
    }

    #[test]
    fn alloc_sites_found() {
        let fns = parse(
            "fn f() -> Vec<u64> {\n    let s = format!(\"x\");\n    let v = vec![0u64; 8];\n    let b = Box::new(s);\n    drop(b);\n    v.clone()\n}\n",
        );
        let whats: Vec<&str> = fns[0].allocs.iter().map(|a| a.what).collect();
        assert!(whats.contains(&"format!"), "{whats:?}");
        assert!(whats.contains(&"vec!"));
        assert!(whats.contains(&"Box::new"));
        assert!(whats.contains(&"clone"));
    }

    #[test]
    fn hot_marker_binds_to_next_fn() {
        let fns = parse(
            "// HOT: batch ingest root — steady state must not allocate.\n#[inline]\nfn process_batch() {}\n\nfn cold() {}\n",
        );
        assert!(
            fns.iter()
                .find(|f| f.name == "process_batch")
                .expect("pb")
                .hot
        );
        assert!(!fns.iter().find(|f| f.name == "cold").expect("cold").hot);
    }

    #[test]
    fn doc_comment_mentioning_hot_prose_is_not_a_marker() {
        let fns = parse("/// This path is hot and HOTLY contested.\nfn f() {}\n");
        assert!(!fns[0].hot, "HOTLY is not the HOT marker");
        let fns = parse("/// the HOT marker must start the line.\nfn g() {}\n");
        assert!(!fns[0].hot);
    }

    #[test]
    fn calls_with_context() {
        let fns = parse(
            "impl E {\n    fn a(&self) { self.warm(1); helper(); CounterMap::new(); self.store.update(3); }\n}\nfn helper() {}\n",
        );
        let a = fns.iter().find(|f| f.name == "a").expect("a");
        let find = |n: &str| a.calls.iter().find(|c| c.name == n).cloned();
        let warm = find("warm").expect("warm");
        assert!(warm.is_method && warm.receiver_is_self);
        let helper = find("helper").expect("helper");
        assert!(!helper.is_method && helper.qual.is_none());
        let new = find("new").expect("new");
        assert_eq!(new.qual.as_deref(), Some("CounterMap"));
        let update = find("update").expect("update");
        assert!(update.is_method && !update.receiver_is_self);
    }

    #[test]
    fn test_mod_fns_are_excluded() {
        let fns = parse(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { let v = vec![1]; drop(v); }\n}\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "lib");
    }

    #[test]
    fn nested_fn_facts_attribute_to_innermost() {
        let fns =
            parse("fn outer() {\n    fn inner() { let v = vec![1]; drop(v); }\n    inner();\n}\n");
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = fns.iter().find(|f| f.name == "inner").expect("inner");
        assert!(outer.allocs.is_empty(), "{:?}", outer.allocs);
        assert_eq!(inner.allocs.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn bodyless_trait_method() {
        let fns =
            parse("trait T {\n    fn must(&self) -> f64;\n    fn has(&self) -> f64 { 1.0 }\n}\n");
        let must = fns.iter().find(|f| f.name == "must").expect("must");
        assert!(must.body.is_none());
        assert_eq!(must.impl_type.as_deref(), Some("T"));
        let has = fns.iter().find(|f| f.name == "has").expect("has");
        assert!(has.body.is_some());
    }
}
