//! `freesketch-analyzer` — CLI entry point for the workspace lint gate.
//!
//! Usage: `freesketch-analyzer [--json] [--root DIR] [--allow FILE]
//! [--pass NAME] [--list-passes]`.
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str =
    "freesketch-analyzer [--json] [--root DIR] [--allow FILE] [--pass NAME] [--list-passes]";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut pass: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a directory argument"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage("--allow requires a file argument"),
            },
            "--pass" => match args.next() {
                Some(v) => pass = Some(v),
                None => return usage("--pass requires a pass name argument"),
            },
            "--list-passes" => {
                for name in analyzer::PASS_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "{USAGE}\n\
                     \n\
                     Static-analysis gate for the freesketch workspace. Passes:\n\
                     ordering-audit, unsafe-gate, lock-discipline, serde-sync,\n\
                     atomic-protocol, lock-order, hot-path-hygiene.\n\
                     --pass NAME runs a single pass; --list-passes prints the names.\n\
                     Exit status: 0 clean, 1 findings, 2 usage/I/O error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(name) = &pass {
        if !analyzer::PASS_NAMES.contains(&name.as_str()) {
            return usage(&format!(
                "unknown pass `{name}` (use --list-passes to see the {} available)",
                analyzer::PASS_NAMES.len()
            ));
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "freesketch-analyzer: no workspace root found (no Cargo.toml with \
                     [workspace] above the current directory); pass --root DIR"
                );
                return ExitCode::from(2);
            }
        },
    };

    match analyzer::run_passes(&root, allow.as_deref(), pass.as_deref()) {
        Ok(analysis) => {
            let rendered = if json {
                analyzer::report::json(
                    &analysis.findings,
                    analysis.files_scanned,
                    &analysis.timings,
                )
            } else {
                analyzer::report::human(
                    &analysis.findings,
                    analysis.files_scanned,
                    &analysis.timings,
                )
            };
            print!("{rendered}");
            if analysis.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("freesketch-analyzer: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("freesketch-analyzer: {problem}\nusage: {USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_manifest(&dir.join("Cargo.toml")) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_manifest(path: &Path) -> bool {
    std::fs::read_to_string(path)
        .map(|text| text.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
