//! # freesketch-analyzer — workspace static-analysis gate
//!
//! The anytime property of the concurrent pipeline rests on source-level
//! invariants the compiler does not check: every atomic ordering choice
//! must be *argued* (one wrong `Relaxed` silently corrupts estimates
//! rather than crashing), `parking_lot`'s non-poisoning locks are
//! load-bearing, library code must not panic on data, and the manual
//! serde impls behind the checkpoint seam must never drift out of sync
//! with their structs. This crate audits all of it, over every
//! non-`vendor/` crate, with a hand-rolled lexer (no `syn`; the build is
//! offline) so string literals and comments can never fool a lint.
//!
//! Two layers of checks:
//!
//! **Line-level lints** on the scrubbed code view:
//!
//! * **ordering-audit** — every `Ordering::{Relaxed,Acquire,Release,
//!   AcqRel,SeqCst}` use site needs an `// ORDERING:` justification
//!   comment within 3 lines;
//! * **unsafe-gate** — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * **lock-discipline** — `std::sync::{Mutex,RwLock}` are banned in
//!   library code (vendored `parking_lot` only), as are `.unwrap()` /
//!   `.expect(` / `panic!` outside tests, binaries, and the
//!   `analyzer-allow.toml` allowlist;
//! * **serde-sync** — manual `Serialize`/`Deserialize` impls are
//!   cross-checked against their struct's field list.
//!
//! **Semantic passes** on per-function facts ([`parser`]) and the
//! workspace call graph ([`callgraph`]):
//!
//! * **atomic-protocol** — atomic use sites grouped by field must agree:
//!   a `Release`-side store needs an `Acquire`-or-stronger load in scope
//!   and vice versa, and `Relaxed`-only fields need an explicit
//!   `// ORDERING: relaxed-ok …` justification;
//! * **lock-order** — the global lock-acquisition graph (guard hold
//!   spans propagated through the call graph) must be acyclic; any
//!   cycle is deadlock potential;
//! * **hot-path-hygiene** — functions reachable from `// HOT` annotated
//!   roots must not allocate, `format!`, or `clone()` in steady state.
//!
//! Deliberate exceptions live in `analyzer-allow.toml` at the workspace
//! root; every entry requires a reason string and stale entries are
//! themselves findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod report;

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Every pass the analyzer runs, in execution order. `--pass NAME`
/// selects one; anything else is a usage error.
pub const PASS_NAMES: [&str; 7] = [
    "ordering-audit",
    "unsafe-gate",
    "lock-discipline",
    "serde-sync",
    "atomic-protocol",
    "lock-order",
    "hot-path-hygiene",
];

/// What kind of target a source file belongs to — decides which passes
/// apply (test/bench/binary code is exempt from lock-discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Library code: all passes apply.
    Lib,
    /// Integration tests (`tests/`) — panic freely.
    Test,
    /// Benches (`benches/`).
    Bench,
    /// Binaries (`src/bin/`, `main.rs`) and `examples/`.
    Bin,
}

/// One lexed source file plus everything a pass needs to know about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// Which target family the file belongs to.
    pub category: Category,
    /// Lexer output (scrubbed code view + comment/string tables).
    pub lexed: lexer::Lexed,
    /// Original source lines (for allowlist matching and snippets).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Reads and lexes one file. `rel_path` should use forward slashes.
    ///
    /// # Errors
    /// Propagates the underlying read error.
    pub fn load(abs: &Path, rel_path: String) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(abs)?;
        Ok(Self {
            category: classify(&rel_path),
            lexed: lexer::lex(&text),
            lines: text.lines().map(str::to_string).collect(),
            rel_path,
        })
    }

    /// The original text of 1-based `line`, or `""` when out of range.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or("", String::as_str)
    }
}

/// One diagnostic. Rendered as `file:line: [pass] message` or as JSON.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced the finding (e.g. `ordering-audit`).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding is file- or entry-level).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Per-pass execution record: how long the pass took and how many of the
/// final (post-allowlist) findings it owns.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name (or `facts` for the shared parse + call-graph build).
    pub pass: &'static str,
    /// Findings surviving the allowlist for this pass.
    pub findings: usize,
    /// Wall-clock microseconds spent in the pass.
    pub micros: u128,
}

/// Result of a full (or `--pass`-filtered) analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// Surviving findings; empty means the gate passes.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-pass timing/count rows, in execution order.
    pub timings: Vec<PassTiming>,
}

/// Classifies a workspace-relative path into a [`Category`].
#[must_use]
pub fn classify(rel_path: &str) -> Category {
    let p = rel_path;
    if p.starts_with("tests/") || p.contains("/tests/") {
        Category::Test
    } else if p.contains("/benches/") {
        Category::Bench
    } else if p.starts_with("examples/")
        || p.contains("/examples/")
        || p.contains("/src/bin/")
        || p.ends_with("/main.rs")
    {
        Category::Bin
    } else {
        Category::Lib
    }
}

/// Directory *names* never descended into: third-party stand-ins, build
/// output, VCS metadata. The analyzer's own deliberately-bad lint
/// fixtures are skipped by workspace-relative path instead — see
/// [`is_analyzer_fixture_dir`] — so a future crate's real `fixtures/`
/// module is not silently exempt from the gate.
const SKIP_DIRS: [&str; 3] = ["vendor", "target", ".git"];

/// Whether a workspace-relative directory is the analyzer's own lint
/// fixture corpus (`crates/analyzer/tests/fixtures`) — the only
/// `fixtures` directory exempt from scanning.
#[must_use]
pub fn is_analyzer_fixture_dir(rel_dir: &str) -> bool {
    rel_dir == "crates/analyzer/tests/fixtures"
        || rel_dir.ends_with("/crates/analyzer/tests/fixtures")
}

/// Recursively collects workspace `.rs` files (skipping [`SKIP_DIRS`] and
/// the analyzer's fixture corpus), sorted by path for deterministic
/// output.
///
/// # Errors
/// Propagates directory-walk I/O errors.
pub fn discover_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut |abs, rel| {
        if rel.ends_with(".rs") {
            paths.push((abs.to_path_buf(), rel.to_string()));
        }
    })?;
    paths.sort_by(|a, b| a.1.cmp(&b.1));
    paths
        .into_iter()
        .map(|(abs, rel)| SourceFile::load(&abs, rel))
        .collect()
}

/// Recursively collects first-party crate manifests (`Cargo.toml` files
/// declaring a `[package]`), sorted by path.
///
/// # Errors
/// Propagates directory-walk and file-read I/O errors.
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<CrateManifest>> {
    let mut found = Vec::new();
    walk(root, root, &mut |abs, rel| {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            found.push((abs.to_path_buf(), rel.to_string()));
        }
    })?;
    found.sort_by(|a, b| a.1.cmp(&b.1));
    let mut out = Vec::new();
    for (abs, rel) in found {
        let text = std::fs::read_to_string(&abs)?;
        if !text.lines().any(|l| l.trim() == "[package]") {
            continue; // virtual manifest
        }
        let dir = abs.parent().unwrap_or(root).to_path_buf();
        let rel_dir = rel.trim_end_matches("Cargo.toml").trim_end_matches('/');
        out.push(CrateManifest {
            dir,
            rel_dir: rel_dir.to_string(),
        });
    }
    Ok(out)
}

/// A first-party crate (a directory whose `Cargo.toml` has `[package]`).
#[derive(Debug)]
pub struct CrateManifest {
    /// Absolute crate directory.
    pub dir: PathBuf,
    /// Workspace-relative crate directory (`""` for the root package).
    pub rel_dir: String,
}

fn walk(root: &Path, dir: &Path, on_file: &mut impl FnMut(&Path, &str)) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel_dir = path
                .strip_prefix(root)
                .map(|r| r.to_string_lossy().replace('\\', "/"))
                .unwrap_or_default();
            if is_analyzer_fixture_dir(&rel_dir) {
                continue;
            }
            walk(root, &path, on_file)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel.to_string_lossy().replace('\\', "/");
            on_file(&path, &rel);
        }
    }
    Ok(())
}

/// Runs every pass over the workspace at `root` and applies the allowlist.
/// Returns the surviving findings (empty means the gate passes) and the
/// number of files scanned.
///
/// Compatibility wrapper over [`run_passes`] (which also reports
/// per-pass timings and supports `--pass` filtering).
///
/// # Errors
/// Propagates I/O errors from discovery or allowlist parsing.
pub fn analyze_workspace(
    root: &Path,
    allow_path: Option<&Path>,
) -> std::io::Result<(Vec<Finding>, usize)> {
    let analysis = run_passes(root, allow_path, None)?;
    Ok((analysis.findings, analysis.files_scanned))
}

/// Runs the analyzer over the workspace at `root`. `pass_filter` limits
/// the run to one pass from [`PASS_NAMES`]; allowlist entries for other
/// passes are then ignored entirely (not reported stale — they may still
/// match in a full run).
///
/// # Errors
/// Propagates I/O errors from discovery or allowlist parsing.
pub fn run_passes(
    root: &Path,
    allow_path: Option<&Path>,
    pass_filter: Option<&str>,
) -> std::io::Result<Analysis> {
    let sources = discover_sources(root)?;
    let crates = discover_crates(root)?;
    let enabled = |name: &str| pass_filter.is_none_or(|p| p == name);

    let mut findings: Vec<Finding> = Vec::new();
    let mut timings: Vec<PassTiming> = Vec::new();
    let timed = |name: &'static str,
                 findings: &mut Vec<Finding>,
                 timings: &mut Vec<PassTiming>,
                 produce: &mut dyn FnMut() -> Vec<Finding>| {
        let t0 = Instant::now();
        let found = produce();
        timings.push(PassTiming {
            pass: name,
            findings: 0, // patched to the post-allowlist count below
            micros: t0.elapsed().as_micros(),
        });
        findings.extend(found);
    };

    if enabled("ordering-audit") {
        timed("ordering-audit", &mut findings, &mut timings, &mut || {
            sources.iter().flat_map(passes::ordering::check).collect()
        });
    }
    if enabled("unsafe-gate") {
        timed("unsafe-gate", &mut findings, &mut timings, &mut || {
            passes::unsafe_gate::check(root, &crates)
        });
    }
    if enabled("lock-discipline") {
        timed("lock-discipline", &mut findings, &mut timings, &mut || {
            sources.iter().flat_map(passes::locks::check).collect()
        });
    }
    if enabled("serde-sync") {
        timed("serde-sync", &mut findings, &mut timings, &mut || {
            passes::serde_sync::check(&sources)
        });
    }

    let semantic = [
        passes::atomic_protocol::NAME,
        passes::lock_order::NAME,
        passes::hot_path::NAME,
    ];
    if semantic.iter().any(|n| enabled(n)) {
        let t0 = Instant::now();
        let ws = callgraph::Workspace::build(&sources);
        timings.push(PassTiming {
            pass: "facts",
            findings: 0,
            micros: t0.elapsed().as_micros(),
        });
        if enabled(passes::atomic_protocol::NAME) {
            timed(
                passes::atomic_protocol::NAME,
                &mut findings,
                &mut timings,
                &mut || passes::atomic_protocol::check(&ws, &sources),
            );
        }
        if enabled(passes::lock_order::NAME) {
            timed(
                passes::lock_order::NAME,
                &mut findings,
                &mut timings,
                &mut || passes::lock_order::check(&ws, &sources),
            );
        }
        if enabled(passes::hot_path::NAME) {
            timed(
                passes::hot_path::NAME,
                &mut findings,
                &mut timings,
                &mut || passes::hot_path::check(&ws, &sources),
            );
        }
    }

    let default_allow = root.join("analyzer-allow.toml");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let allowlist = if allow_path.exists() {
        allow::parse_file(allow_path)?
    } else {
        allow::Allowlist::default()
    };
    let findings = allowlist.apply_for(findings, &sources, pass_filter);

    for t in &mut timings {
        t.findings = findings.iter().filter(|f| f.pass == t.pass).count();
    }

    Ok(Analysis {
        findings,
        files_scanned: sources.len(),
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_dir_scope_is_exact() {
        assert!(is_analyzer_fixture_dir("crates/analyzer/tests/fixtures"));
        assert!(!is_analyzer_fixture_dir("crates/core/tests/fixtures"));
        assert!(!is_analyzer_fixture_dir("crates/core/src/fixtures"));
        assert!(!is_analyzer_fixture_dir("fixtures"));
    }

    #[test]
    fn pass_names_are_distinct_and_ordered() {
        let mut sorted = PASS_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), PASS_NAMES.len());
    }
}
