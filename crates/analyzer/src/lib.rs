//! # freesketch-analyzer — workspace static-analysis gate
//!
//! The anytime property of the concurrent pipeline rests on source-level
//! invariants the compiler does not check: every atomic ordering choice
//! must be *argued* (one wrong `Relaxed` silently corrupts estimates
//! rather than crashing), `parking_lot`'s non-poisoning locks are
//! load-bearing, library code must not panic on data, and the manual
//! serde impls behind the checkpoint seam must never drift out of sync
//! with their structs. This crate audits all four, over every
//! non-`vendor/` crate, with a hand-rolled lexer (no `syn`; the build is
//! offline) so string literals and comments can never fool a lint.
//!
//! Passes (see [`passes`]):
//!
//! * **ordering-audit** — every `Ordering::{Relaxed,Acquire,Release,
//!   AcqRel,SeqCst}` use site needs an `// ORDERING:` justification
//!   comment within 3 lines;
//! * **unsafe-gate** — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * **lock-discipline** — `std::sync::{Mutex,RwLock}` are banned in
//!   library code (vendored `parking_lot` only), as are `.unwrap()` /
//!   `.expect(` / `panic!` outside tests, binaries, and the
//!   `analyzer-allow.toml` allowlist;
//! * **serde-sync** — manual `Serialize`/`Deserialize` impls are
//!   cross-checked against their struct's field list.
//!
//! Deliberate exceptions live in `analyzer-allow.toml` at the workspace
//! root; every entry requires a reason string and stale entries are
//! themselves findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod passes;
pub mod report;

use std::path::{Path, PathBuf};

/// What kind of target a source file belongs to — decides which passes
/// apply (test/bench/binary code is exempt from lock-discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Library code: all passes apply.
    Lib,
    /// Integration tests (`tests/`) — panic freely.
    Test,
    /// Benches (`benches/`).
    Bench,
    /// Binaries (`src/bin/`, `main.rs`) and `examples/`.
    Bin,
}

/// One lexed source file plus everything a pass needs to know about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// Which target family the file belongs to.
    pub category: Category,
    /// Lexer output (scrubbed code view + comment/string tables).
    pub lexed: lexer::Lexed,
    /// Original source lines (for allowlist matching and snippets).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Reads and lexes one file. `rel_path` should use forward slashes.
    ///
    /// # Errors
    /// Propagates the underlying read error.
    pub fn load(abs: &Path, rel_path: String) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(abs)?;
        Ok(Self {
            category: classify(&rel_path),
            lexed: lexer::lex(&text),
            lines: text.lines().map(str::to_string).collect(),
            rel_path,
        })
    }

    /// The original text of 1-based `line`, or `""` when out of range.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or("", String::as_str)
    }
}

/// One diagnostic. Rendered as `file:line: [pass] message` or as JSON.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced the finding (e.g. `ordering-audit`).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding is file- or entry-level).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Classifies a workspace-relative path into a [`Category`].
#[must_use]
pub fn classify(rel_path: &str) -> Category {
    let p = rel_path;
    if p.starts_with("tests/") || p.contains("/tests/") {
        Category::Test
    } else if p.contains("/benches/") {
        Category::Bench
    } else if p.starts_with("examples/")
        || p.contains("/examples/")
        || p.contains("/src/bin/")
        || p.ends_with("/main.rs")
    {
        Category::Bin
    } else {
        Category::Lib
    }
}

/// Directories never descended into: third-party stand-ins, build output,
/// VCS metadata, and the analyzer's own deliberately-bad lint fixtures.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Recursively collects workspace `.rs` files (skipping [`SKIP_DIRS`]),
/// sorted by path for deterministic output.
///
/// # Errors
/// Propagates directory-walk I/O errors.
pub fn discover_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut |abs, rel| {
        if rel.ends_with(".rs") {
            paths.push((abs.to_path_buf(), rel.to_string()));
        }
    })?;
    paths.sort_by(|a, b| a.1.cmp(&b.1));
    paths
        .into_iter()
        .map(|(abs, rel)| SourceFile::load(&abs, rel))
        .collect()
}

/// Recursively collects first-party crate manifests (`Cargo.toml` files
/// declaring a `[package]`), sorted by path.
///
/// # Errors
/// Propagates directory-walk and file-read I/O errors.
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<CrateManifest>> {
    let mut found = Vec::new();
    walk(root, root, &mut |abs, rel| {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            found.push((abs.to_path_buf(), rel.to_string()));
        }
    })?;
    found.sort_by(|a, b| a.1.cmp(&b.1));
    let mut out = Vec::new();
    for (abs, rel) in found {
        let text = std::fs::read_to_string(&abs)?;
        if !text.lines().any(|l| l.trim() == "[package]") {
            continue; // virtual manifest
        }
        let dir = abs.parent().unwrap_or(root).to_path_buf();
        let rel_dir = rel.trim_end_matches("Cargo.toml").trim_end_matches('/');
        out.push(CrateManifest {
            dir,
            rel_dir: rel_dir.to_string(),
        });
    }
    Ok(out)
}

/// A first-party crate (a directory whose `Cargo.toml` has `[package]`).
#[derive(Debug)]
pub struct CrateManifest {
    /// Absolute crate directory.
    pub dir: PathBuf,
    /// Workspace-relative crate directory (`""` for the root package).
    pub rel_dir: String,
}

fn walk(root: &Path, dir: &Path, on_file: &mut impl FnMut(&Path, &str)) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, on_file)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel.to_string_lossy().replace('\\', "/");
            on_file(&path, &rel);
        }
    }
    Ok(())
}

/// Runs every pass over the workspace at `root` and applies the allowlist.
/// Returns the surviving findings (empty means the gate passes) and the
/// number of files scanned.
///
/// # Errors
/// Propagates I/O errors from discovery or allowlist parsing.
pub fn analyze_workspace(
    root: &Path,
    allow_path: Option<&Path>,
) -> std::io::Result<(Vec<Finding>, usize)> {
    let sources = discover_sources(root)?;
    let crates = discover_crates(root)?;

    let mut findings = Vec::new();
    for src in &sources {
        findings.extend(passes::ordering::check(src));
        findings.extend(passes::locks::check(src));
    }
    findings.extend(passes::unsafe_gate::check(root, &crates));
    findings.extend(passes::serde_sync::check(&sources));

    let default_allow = root.join("analyzer-allow.toml");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let allowlist = if allow_path.exists() {
        allow::parse_file(allow_path)?
    } else {
        allow::Allowlist::default()
    };
    let findings = allowlist.apply(findings, &sources);

    Ok((findings, sources.len()))
}
