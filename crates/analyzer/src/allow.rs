//! `analyzer-allow.toml` — the checked-in exception list.
//!
//! A tiny hand-parsed TOML subset (the workspace builds offline, so no
//! `toml` crate): `[[allow]]` tables with string values only, `#`
//! comments, `\"` and `\\` escapes. Example:
//!
//! ```toml
//! [[allow]]
//! pass = "lock-discipline"
//! path = "crates/core/src/window.rs"
//! pattern = "expect(\"window never empty\")"
//! reason = "structural invariant: the deque is seeded non-empty and rotate only appends"
//! ```
//!
//! `pass` and `path` select findings (path is a suffix match against the
//! workspace-relative file); `pattern`, when present, additionally
//! requires the flagged source line to contain the substring. `reason` is
//! mandatory — an allowlist without arguments is just a mute button — and
//! entries that matched nothing are reported as stale, so the file can
//! only shrink as the code improves.

use crate::{Finding, SourceFile};
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, Default)]
pub struct Entry {
    /// Pass name the entry applies to (e.g. `lock-discipline`).
    pub pass: String,
    /// Suffix-matched workspace-relative path.
    pub path: String,
    /// Optional substring the flagged source line must contain.
    pub pattern: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line of the entry header in the TOML file.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// Path the list was parsed from (for diagnostics).
    pub file: String,
    /// Findings produced while parsing (malformed lines, missing reasons).
    pub parse_findings: Vec<Finding>,
}

/// Parses an allowlist file.
///
/// # Errors
/// Propagates the underlying read error; malformed *content* is reported
/// through [`Allowlist::parse_findings`] instead, so a broken allowlist
/// fails the gate rather than crashing it.
pub fn parse_file(path: &Path) -> std::io::Result<Allowlist> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse(&text, &path.to_string_lossy()))
}

/// Parses allowlist text; `file` is used in diagnostics only.
#[must_use]
pub fn parse(text: &str, file: &str) -> Allowlist {
    let mut list = Allowlist {
        file: file.to_string(),
        ..Allowlist::default()
    };
    let mut current: Option<Entry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            list.finish(current.take());
            current = Some(Entry {
                line: line_no,
                ..Entry::default()
            });
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            list.parse_findings.push(Finding {
                pass: "allowlist",
                file: file.to_string(),
                line: line_no,
                message: format!("unparsable allowlist line: `{line}`"),
            });
            continue;
        };
        let Some(entry) = current.as_mut() else {
            list.parse_findings.push(Finding {
                pass: "allowlist",
                file: file.to_string(),
                line: line_no,
                message: format!("`{key}` outside an [[allow]] table"),
            });
            continue;
        };
        match key {
            "pass" => entry.pass = value,
            "path" => entry.path = value,
            "pattern" => entry.pattern = value,
            "reason" => entry.reason = value,
            other => list.parse_findings.push(Finding {
                pass: "allowlist",
                file: file.to_string(),
                line: line_no,
                message: format!("unknown allowlist key `{other}`"),
            }),
        }
    }
    list.finish(current.take());
    list
}

impl Allowlist {
    /// Validates and appends a finished entry.
    fn finish(&mut self, entry: Option<Entry>) {
        let Some(entry) = entry else { return };
        if entry.reason.trim().is_empty() {
            self.parse_findings.push(Finding {
                pass: "allowlist",
                file: self.file.clone(),
                line: entry.line,
                message: format!(
                    "allowlist entry for `{}` has no reason — every exception must be argued",
                    entry.path
                ),
            });
            return;
        }
        if entry.pass.is_empty() || entry.path.is_empty() {
            self.parse_findings.push(Finding {
                pass: "allowlist",
                file: self.file.clone(),
                line: entry.line,
                message: "allowlist entry needs both `pass` and `path`".to_string(),
            });
            return;
        }
        self.entries.push(entry);
    }

    /// Filters `findings` through the list: suppressed findings are
    /// dropped, parse problems and stale (never-matching) entries are
    /// appended as findings of pass `allowlist`.
    #[must_use]
    pub fn apply(&self, findings: Vec<Finding>, sources: &[SourceFile]) -> Vec<Finding> {
        self.apply_for(findings, sources, None)
    }

    /// [`Allowlist::apply`] for a `--pass`-filtered run: entries whose
    /// `pass` differs from the selected pass are ignored entirely — they
    /// may still match in a full run, so they are not reported stale.
    #[must_use]
    pub fn apply_for(
        &self,
        findings: Vec<Finding>,
        sources: &[SourceFile],
        pass_filter: Option<&str>,
    ) -> Vec<Finding> {
        let in_scope =
            |e: &Entry| pass_filter.is_none() || pass_filter.is_some_and(|p| e.pass == p);
        let mut used: Vec<bool> = self.entries.iter().map(|e| !in_scope(e)).collect();
        let mut out = Vec::new();
        for finding in findings {
            let line_text = sources
                .iter()
                .find(|s| s.rel_path == finding.file)
                .map_or("", |s| s.line_text(finding.line));
            let suppressed = self.entries.iter().enumerate().any(|(i, e)| {
                let hit = e.pass == finding.pass
                    && finding.file.ends_with(&e.path)
                    && (e.pattern.is_empty() || line_text.contains(&e.pattern));
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !suppressed {
                out.push(finding);
            }
        }
        out.extend(self.parse_findings.iter().cloned());
        for (entry, used) in self.entries.iter().zip(&used) {
            if !used {
                out.push(Finding {
                    pass: "allowlist",
                    file: self.file.clone(),
                    line: entry.line,
                    message: format!(
                        "stale allowlist entry (pass `{}`, path `{}`): nothing matches it any more — delete it",
                        entry.pass, entry.path
                    ),
                });
            }
        }
        out
    }
}

/// Parses `key = "value"` with `\"`/`\\` escapes. Returns `None` when the
/// line is not of that shape.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let inner = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some(other) => {
                    value.push('\\');
                    value.push(other);
                }
                None => return None,
            },
            '"' => {
                // Closing quote: only trailing comments/whitespace may follow.
                let tail: String = chars.collect();
                let tail = tail.trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some((key, value));
                }
                return None;
            }
            other => value.push(other),
        }
    }
    None // unterminated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_escapes() {
        let text = r#"
# exceptions
[[allow]]
pass = "lock-discipline"
path = "crates/core/src/window.rs"
pattern = "expect(\"window never empty\")"
reason = "structural invariant"
"#;
        let list = parse(text, "analyzer-allow.toml");
        assert!(list.parse_findings.is_empty());
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].pattern, r#"expect("window never empty")"#);
    }

    #[test]
    fn entry_without_reason_is_a_finding() {
        let text = "[[allow]]\npass = \"x\"\npath = \"y.rs\"\n";
        let list = parse(text, "a.toml");
        assert!(list.entries.is_empty());
        assert_eq!(list.parse_findings.len(), 1);
        assert!(list.parse_findings[0].message.contains("no reason"));
    }

    #[test]
    fn stale_entry_is_reported() {
        let text = "[[allow]]\npass = \"p\"\npath = \"nope.rs\"\nreason = \"r\"\n";
        let list = parse(text, "a.toml");
        let out = list.apply(Vec::new(), &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("stale"));
    }

    #[test]
    fn matching_suppresses_and_consumes() {
        let text =
            "[[allow]]\npass = \"p\"\npath = \"file.rs\"\nreason = \"because tested elsewhere\"\n";
        let list = parse(text, "a.toml");
        let findings = vec![Finding {
            pass: "p",
            file: "crates/x/src/file.rs".to_string(),
            line: 3,
            message: "m".to_string(),
        }];
        let out = list.apply(findings, &[]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn garbage_line_is_a_finding() {
        let list = parse("[[allow]]\nwat\nreason = \"r\"\n", "a.toml");
        assert!(list
            .parse_findings
            .iter()
            .any(|f| f.message.contains("unparsable")));
    }
}
