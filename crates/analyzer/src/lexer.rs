//! A hand-rolled Rust lexer — just enough to classify every byte of a
//! source file as *code*, *comment*, or *literal*.
//!
//! The passes in [`crate::passes`] are textual: they look for tokens like
//! `Ordering::Relaxed` or `.unwrap()` and must never fire on occurrences
//! inside string literals or comments (`SNIPPETS.md` quotes, doc examples,
//! regression-test notes). Conversely, the ordering audit must *find*
//! `// ORDERING:` comments, and the serde-sync pass must read the field-key
//! string literals of manual impls. So the lexer produces three views of
//! one file:
//!
//! * [`Lexed::scrubbed`] — the source with every comment and every literal
//!   *content* replaced by spaces (delimiters and newlines kept), so code
//!   searches are literal-proof and line numbers still line up;
//! * [`Lexed::comments`] — every comment with its line range and text;
//! * [`Lexed::strings`] — every string literal with its line, value, and
//!   byte span *in the scrubbed text* (so passes can inspect the code
//!   around a literal).
//!
//! Handled correctly (and covered by the tests at the bottom): nested
//! block comments, `//` inside string literals, raw strings with any hash
//! depth (`r"…"`, `r#"…"#`, `br##"…"##`, `c"…"`), escaped quotes, char
//! literals (including `'\''` and `'"'`), and lifetimes (`'a`, `'_`) which
//! must *not* be parsed as unterminated char literals.

/// One comment (line `//…` or block `/* … */`, doc variants included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the first character of the comment.
    pub line: usize,
    /// 1-based line of the last character of the comment.
    pub end_line: usize,
    /// Full comment text, delimiters included.
    pub text: String,
}

/// One string literal (cooked, raw, byte, or C variants).
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// Literal content between the delimiters, escapes left as written.
    pub value: String,
    /// Byte offset of the opening delimiter in [`Lexed::scrubbed`].
    pub start: usize,
    /// Byte offset one past the closing delimiter in [`Lexed::scrubbed`].
    pub end: usize,
}

/// The lexer's output: a scrubbed code view plus comment/string side tables.
#[derive(Debug)]
pub struct Lexed {
    /// Source with comments and literal contents blanked to spaces.
    /// Newlines are preserved, so line numbers match the original file.
    pub scrubbed: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
}

impl Lexed {
    /// The scrubbed text split into lines (no trailing newlines).
    #[must_use]
    pub fn scrubbed_lines(&self) -> Vec<&str> {
        self.scrubbed.lines().collect()
    }

    /// 1-based line number of byte `offset` in [`Lexed::scrubbed`].
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        self.scrubbed.as_bytes()[..offset.min(self.scrubbed.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Lexes `input`, classifying every character. Never fails: malformed
/// input (unterminated literals/comments) is consumed to end-of-file,
/// which is the right behavior for an auditor that must not crash on the
/// code it polices.
#[must_use]
pub fn lex(input: &str) -> Lexed {
    Lexer::new(input).run()
}

struct Lexer {
    src: Vec<char>,
    i: usize,
    line: usize,
    scrubbed: String,
    comments: Vec<Comment>,
    strings: Vec<StrLit>,
}

impl Lexer {
    fn new(input: &str) -> Self {
        Self {
            src: input.chars().collect(),
            i: 0,
            line: 1,
            scrubbed: String::with_capacity(input.len()),
            comments: Vec::new(),
            strings: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.i + ahead).copied()
    }

    /// Copies the current char into the scrubbed view verbatim.
    fn keep(&mut self) {
        let c = self.src[self.i];
        if c == '\n' {
            self.line += 1;
        }
        self.scrubbed.push(c);
        self.i += 1;
    }

    /// Blanks the current char in the scrubbed view (newlines survive so
    /// line numbers stay aligned).
    fn blank(&mut self) {
        let c = self.src[self.i];
        if c == '\n' {
            self.line += 1;
            self.scrubbed.push('\n');
        } else {
            self.scrubbed.push(' ');
        }
        self.i += 1;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.cooked_string(0),
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => self.keep(),
            }
        }
        Lexed {
            scrubbed: self.scrubbed,
            comments: self.comments,
            strings: self.strings,
        }
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.blank();
        }
        self.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.blank();
                self.blank();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.blank();
                self.blank();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.blank();
            }
        }
        self.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text,
        });
    }

    /// A `"…"` string whose opening delimiter spans `prefix_len` extra
    /// chars already consumed by the caller (`b"`, `c"`). Handles `\`
    /// escapes; content is blanked, delimiters kept.
    fn cooked_string(&mut self, _prefix_len: usize) {
        let start_line = self.line;
        let start = self.scrubbed.len();
        self.keep(); // opening quote
        let mut value = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                value.push(c);
                self.blank();
                if let Some(esc) = self.peek(0) {
                    value.push(esc);
                    self.blank();
                }
            } else if c == '"' {
                self.keep(); // closing quote
                break;
            } else {
                value.push(c);
                self.blank();
            }
        }
        self.strings.push(StrLit {
            line: start_line,
            value,
            start,
            end: self.scrubbed.len(),
        });
    }

    /// A raw string starting at the current `r` (possibly after a `b`/`c`
    /// the caller already kept): `r"…"`, `r#"…"#`, any hash depth.
    fn raw_string(&mut self) {
        let start_line = self.line;
        let start = self.scrubbed.len();
        self.keep(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.keep();
        }
        if self.peek(0) != Some('"') {
            return; // not actually a raw string (e.g. `r#ident`); leave as code
        }
        self.keep(); // opening quote
        let mut value = String::new();
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Close only when followed by exactly `hashes` hash marks.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.keep(); // closing quote
                    for _ in 0..hashes {
                        self.keep();
                    }
                    break 'scan;
                }
            }
            value.push(c);
            self.blank();
        }
        self.strings.push(StrLit {
            line: start_line,
            value,
            start,
            end: self.scrubbed.len(),
        });
    }

    /// Char literal, byte-char literal, or lifetime/loop-label.
    fn char_or_lifetime(&mut self) {
        match (self.peek(1), self.peek(2)) {
            // '\…' — escaped char literal: consume through the closing quote.
            (Some('\\'), _) => {
                let start_line = self.line;
                let start = self.scrubbed.len();
                self.keep(); // opening quote
                let mut value = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        value.push(c);
                        self.blank();
                        if let Some(esc) = self.peek(0) {
                            value.push(esc);
                            self.blank();
                        }
                    } else if c == '\'' {
                        self.keep();
                        break;
                    } else {
                        value.push(c);
                        self.blank();
                    }
                }
                self.strings.push(StrLit {
                    line: start_line,
                    value,
                    start,
                    end: self.scrubbed.len(),
                });
            }
            // 'x' — single-char literal (covers '"', '_', unicode chars).
            (Some(_), Some('\'')) => {
                let start_line = self.line;
                let start = self.scrubbed.len();
                self.keep(); // opening quote
                let mut value = String::new();
                if let Some(c) = self.peek(0) {
                    value.push(c);
                    self.blank();
                }
                self.keep(); // closing quote
                self.strings.push(StrLit {
                    line: start_line,
                    value,
                    start,
                    end: self.scrubbed.len(),
                });
            }
            // 'ident — lifetime or loop label: keep the quote, the
            // identifier is consumed as ordinary code.
            _ => self.keep(),
        }
    }

    /// An identifier — or a literal with an identifier-like prefix
    /// (`r"…"`, `br#"…"#, `b"…"`, `c"…"`, `b'x'`). Identifiers are
    /// consumed atomically so `for"x"`-style false raw-string matches
    /// cannot happen mid-identifier.
    fn ident_or_prefixed_literal(&mut self) {
        let c = self.src[self.i];
        let next = self.peek(1);
        // Raw string: r" r# — possibly after b/c (br" cr#").
        if c == 'r' && matches!(next, Some('"') | Some('#')) {
            self.raw_string();
            return;
        }
        if (c == 'b' || c == 'c')
            && next == Some('r')
            && matches!(self.peek(2), Some('"') | Some('#'))
        {
            self.keep(); // 'b' / 'c'
            self.raw_string();
            return;
        }
        if (c == 'b' || c == 'c') && next == Some('"') {
            self.keep(); // 'b' / 'c'
            self.cooked_string(1);
            return;
        }
        if c == 'b' && next == Some('\'') {
            self.keep(); // 'b'
            self.char_or_lifetime();
            return;
        }
        // Plain identifier.
        while let Some(c) = self.peek(0) {
            if is_ident_char(c) {
                self.keep();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_passes_through_unchanged() {
        let src = "fn main() { let x = 1 + 2; }";
        let lexed = lex(src);
        assert_eq!(lexed.scrubbed, src);
        assert!(lexed.comments.is_empty());
        assert!(lexed.strings.is_empty());
    }

    #[test]
    fn line_comment_is_blanked_and_recorded() {
        let src = "let x = 1; // Ordering::Relaxed here is just prose\nlet y = 2;";
        let lexed = lex(src);
        assert!(!lexed.scrubbed.contains("Ordering"));
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("Ordering::Relaxed"));
        assert!(lexed.scrubbed.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let lexed = lex(src);
        // One comment covering the whole nested span: `still comment` is
        // part of it, and the trailing ` b` survives as code.
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(lexed.comments[0].text.contains("still comment"));
        assert!(!lexed.scrubbed.contains("still"));
        assert!(lexed.scrubbed.starts_with("a "));
        assert!(lexed.scrubbed.ends_with(" b"));
    }

    #[test]
    fn multiline_block_comment_tracks_lines() {
        let src = "x\n/* one\ntwo\nthree */\ny";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].end_line, 4);
        // Newlines survive blanking: 'y' is still on line 5.
        assert_eq!(lexed.line_of(lexed.scrubbed.rfind('y').unwrap()), 5);
    }

    #[test]
    fn slashes_inside_string_are_not_comments() {
        let src = r#"let url = "http://example.com/a"; let z = 1;"#;
        let lexed = lex(src);
        assert!(lexed.comments.is_empty());
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "http://example.com/a");
        assert!(lexed.scrubbed.contains("let z = 1;"));
        assert!(!lexed.scrubbed.contains("example"));
    }

    #[test]
    fn ordering_token_inside_plain_string_is_blanked() {
        let src = r#"let s = "Ordering::Relaxed";"#;
        let lexed = lex(src);
        assert!(!lexed.scrubbed.contains("Ordering"));
        assert_eq!(lexed.strings[0].value, "Ordering::Relaxed");
    }

    #[test]
    fn raw_string_containing_ordering_relaxed() {
        let src = r###"let s = r#"load(Ordering::Relaxed) // not code"#; let t = 3;"###;
        let lexed = lex(src);
        assert!(!lexed.scrubbed.contains("Ordering"));
        assert!(
            lexed.comments.is_empty(),
            "// inside raw string is not a comment"
        );
        assert_eq!(
            lexed.strings[0].value,
            "load(Ordering::Relaxed) // not code"
        );
        assert!(lexed.scrubbed.contains("let t = 3;"));
    }

    #[test]
    fn raw_string_with_inner_quote_hash_mismatch() {
        // The "# inside must not close a ##-delimited raw string.
        let src = r####"let s = r##"a "# b"##; done"####;
        let lexed = lex(src);
        assert_eq!(lexed.strings[0].value, r##"a "# b"##);
        assert!(lexed.scrubbed.contains("done"));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"bytes//x"; let b = c"cstr"; let c = br#"raw"#;"##;
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 3);
        assert!(lexed.comments.is_empty());
        assert_eq!(lexed.strings[0].value, "bytes//x");
    }

    #[test]
    fn escaped_quote_does_not_terminate() {
        let src = r#"let s = "he said \"hi\" // ok"; let u = 9;"#;
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 1);
        assert!(lexed.comments.is_empty());
        assert!(lexed.scrubbed.contains("let u = 9;"));
    }

    #[test]
    fn char_literals_including_quote_and_escape() {
        let src = r#"let a = '"'; let b = '\''; let c = '\\'; let d = 'x';"#;
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 4);
        assert!(lexed.comments.is_empty());
        // The double-quote char literal must not open a string.
        assert!(lexed.scrubbed.contains("let b ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // done";
        let lexed = lex(src);
        assert!(lexed.strings.is_empty());
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.scrubbed.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn comment_marker_inside_char_literal() {
        let src = "let slash = '/'; let quote = '\\''; // trailing";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("trailing"));
    }

    #[test]
    fn string_span_offsets_point_into_scrubbed() {
        let src = r#"serde::map_field(map, "store")?"#;
        let lexed = lex(src);
        let lit = &lexed.strings[0];
        assert_eq!(&lexed.scrubbed[lit.start..lit.start + 1], "\"");
        assert_eq!(lit.value, "store");
        // Code before the literal is intact in the scrubbed view.
        assert!(lexed.scrubbed[..lit.start].contains("map_field"));
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panicking() {
        let src = "let s = \"never closed...";
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 1);
        assert!(!lexed.scrubbed.contains("never"));
    }
}
