//! **lock-discipline** — library code must not poison and must not panic.
//!
//! Two families of findings, both restricted to [`crate::Category::Lib`]
//! files and skipping `#[cfg(test)] mod` bodies:
//!
//! * `std::sync::Mutex` / `std::sync::RwLock` are banned. The vendored
//!   `parking_lot` is the only lock supplier: `core::concurrent` and the
//!   sharded counter maps rely on its non-poisoning semantics (a panicking
//!   writer must not wedge every later reader with a `PoisonError`), so a
//!   stray std lock is a semantic regression, not a style nit.
//! * `.unwrap()`, `.expect(`, and `panic!` are banned: library code
//!   returns `Result` or argues an allowlist entry. Test modules,
//!   `tests/`, `benches/`, `src/bin/` and `examples/` are exempt — panics
//!   are a fine failure mode for code whose only caller is a harness.

use crate::{Category, Finding, SourceFile};

/// Runs the pass over one file.
#[must_use]
pub fn check(src: &SourceFile) -> Vec<Finding> {
    if src.category != Category::Lib {
        return Vec::new();
    }
    let test_ranges = super::test_mod_line_ranges(&src.lexed);
    let mut findings = Vec::new();

    for (idx, line) in src.lexed.scrubbed.lines().enumerate() {
        let line_no = idx + 1;
        if super::in_ranges(&test_ranges, line_no) {
            continue;
        }
        for lock in ["Mutex", "RwLock"] {
            for _ in super::word_occurrences(line, &format!("std::sync::{lock}")) {
                findings.push(Finding {
                    pass: "lock-discipline",
                    file: src.rel_path.clone(),
                    line: line_no,
                    message: format!(
                        "std::sync::{lock} in library code — use parking_lot::{lock}: its \
                         non-poisoning semantics are load-bearing for the concurrent pipeline"
                    ),
                });
            }
        }
        for (token, what) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
            for _ in find_all(line, token) {
                findings.push(Finding {
                    pass: "lock-discipline",
                    file: src.rel_path.clone(),
                    line: line_no,
                    message: format!(
                        "`.{what}` in non-test library code — propagate a Result or add an \
                         analyzer-allow.toml entry with a reason"
                    ),
                });
            }
        }
        for _ in super::word_occurrences(line, "panic!") {
            findings.push(Finding {
                pass: "lock-discipline",
                file: src.rel_path.clone(),
                line: line_no,
                message: "`panic!` in non-test library code — return an error or add an \
                          analyzer-allow.toml entry with a reason"
                    .to_string(),
            });
        }
    }

    // `use std::sync::{…}` groups can smuggle a lock across lines.
    findings.extend(use_group_locks(src, &test_ranges));
    findings
}

fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

fn use_group_locks(src: &SourceFile, test_ranges: &[(usize, usize)]) -> Vec<Finding> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut findings = Vec::new();
    for at in find_all(s, "use std::sync::") {
        let mut i = at + "use std::sync::".len();
        i = super::skip_ws(bytes, i);
        if bytes.get(i) != Some(&b'{') {
            continue; // single import: the per-line scan already saw it
        }
        let end = super::match_delim(bytes, i);
        let group = &s[i..end];
        let line_no = src.lexed.line_of(at);
        if super::in_ranges(test_ranges, line_no) {
            continue;
        }
        for lock in ["Mutex", "RwLock"] {
            if !super::word_occurrences(group, lock).is_empty() {
                findings.push(Finding {
                    pass: "lock-discipline",
                    file: src.rel_path.clone(),
                    line: line_no,
                    message: format!(
                        "std::sync::{lock} imported in library code — use parking_lot::{lock}"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile {
            rel_path: "crates/x/src/thing.rs".to_string(),
            category: Category::Lib,
            lexed: lex(src),
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    #[test]
    fn std_mutex_fires() {
        let f = lib_file("static M: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n");
        let findings = check(&f);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("parking_lot"));
    }

    #[test]
    fn grouped_import_fires() {
        let f = lib_file("use std::sync::{atomic::AtomicU64, RwLock};\n");
        let findings = check(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("RwLock"));
    }

    #[test]
    fn parking_lot_is_fine() {
        let f = lib_file("use parking_lot::{Mutex, RwLock};\nuse std::sync::atomic::AtomicU64;\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn unwrap_expect_panic_fire() {
        let f = lib_file("fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"boom\") }\nfn h(x: Option<u32>) -> u32 { x.expect(\"present\") }\n");
        assert_eq!(check(&f).len(), 3);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = lib_file("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let f = lib_file(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(\"ok in tests\") }\n}\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn non_lib_categories_exempt() {
        let mut f = lib_file("fn main() { None::<u32>.unwrap(); }\n");
        f.category = Category::Bin;
        assert!(check(&f).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_ignored() {
        let f = lib_file(
            "// std::sync::Mutex would poison; .unwrap() panics.\nconst HELP: &str = \"don't panic!(…)\";\n",
        );
        assert!(check(&f).is_empty());
    }
}
