//! **atomic-protocol** — field-level pairing of atomic orderings.
//!
//! The ordering-audit pass checks each atomic *site* carries a
//! justification comment; this pass checks the sites of each atomic
//! *field* agree with each other:
//!
//! * a field with a `Release`/`AcqRel`/`SeqCst` **store side** must have
//!   an `Acquire`-or-stronger **load side** somewhere in the same scope
//!   (a release with no acquire publishes to nobody — the fence is
//!   either dead weight or the reader is missing its half);
//! * symmetrically, an `Acquire`-or-stronger load whose field is only
//!   ever written `Relaxed` acquired nothing (checked only when the
//!   scope writes the field at all — a load-only scope may pair with a
//!   writer outside library code);
//! * a field used **only** with `Relaxed` must carry at least one
//!   `// ORDERING: relaxed-ok …` justification — this mechanizes the
//!   "all orderings here are deliberately Relaxed" invariant the crate
//!   docs currently state in prose.
//!
//! Scope is the enclosing `impl` subject for `self.field` sites and the
//! file for free-standing receivers, so two structs with a field of the
//! same name are never conflated.

use crate::callgraph::Workspace;
use crate::parser::{AtomicKind, AtomicSite};
use crate::{Finding, SourceFile};
use std::collections::BTreeMap;

/// Pass name as it appears in findings and `--pass` selection.
pub const NAME: &str = "atomic-protocol";

/// Orderings that carry an acquire half on a load.
fn acquires(ordering: &str) -> bool {
    matches!(ordering, "Acquire" | "AcqRel" | "SeqCst")
}

/// Orderings that carry a release half on a store/RMW.
fn releases(ordering: &str) -> bool {
    matches!(ordering, "Release" | "AcqRel" | "SeqCst")
}

/// Runs the pass over the parsed workspace.
#[must_use]
pub fn check(ws: &Workspace, sources: &[SourceFile]) -> Vec<Finding> {
    // (scope, field) -> sites; BTreeMap for deterministic output order.
    let mut groups: BTreeMap<(String, String), Vec<&AtomicSite>> = BTreeMap::new();
    for f in &ws.fns {
        let file = &sources[f.file].rel_path;
        for site in &f.atomics {
            let scope = if site.via_self {
                f.impl_type.clone().unwrap_or_else(|| file.clone())
            } else {
                file.clone()
            };
            groups
                .entry((scope, site.field.clone()))
                .or_default()
                .push(site);
        }
    }

    let mut out = Vec::new();
    for ((scope, field), sites) in &groups {
        let file_of = |s: &AtomicSite| site_file(ws, sources, s, field).to_string();

        let release_store = sites
            .iter()
            .find(|s| s.kind != AtomicKind::Load && releases(&s.ordering));
        let acquire_load = sites
            .iter()
            .find(|s| s.kind != AtomicKind::Store && acquires(&s.ordering));
        let any_write = sites.iter().any(|s| s.kind != AtomicKind::Load);

        if let Some(store) = release_store {
            if acquire_load.is_none() {
                out.push(Finding {
                    pass: NAME,
                    file: file_of(store),
                    line: store.line,
                    message: format!(
                        "`{scope}::{field}`: {}-side store has no Acquire-or-stronger \
                         load anywhere in scope — the release publishes to nobody",
                        store.ordering
                    ),
                });
            }
        } else if let Some(load) = acquire_load {
            // No release-side store; flag the acquire only when this
            // scope demonstrably writes the field (otherwise the writer
            // may live outside library code).
            if any_write {
                out.push(Finding {
                    pass: NAME,
                    file: file_of(load),
                    line: load.line,
                    message: format!(
                        "`{scope}::{field}`: {}-side load but every store in scope is \
                         Relaxed — the acquire synchronizes with nothing",
                        load.ordering
                    ),
                });
            }
        } else if sites.iter().all(|s| s.ordering == "Relaxed")
            && !sites.iter().any(|s| s.relaxed_ok)
        {
            let first = sites[0];
            out.push(Finding {
                pass: NAME,
                file: file_of(first),
                line: first.line,
                message: format!(
                    "`{scope}::{field}` is Relaxed-only but no site carries an \
                     `// ORDERING: relaxed-ok` justification — state why no \
                     synchronization is needed"
                ),
            });
        }
    }
    out
}

/// Best-effort file attribution for a site (sites do not carry their file;
/// recover it from the owning function).
fn site_file<'a>(
    ws: &Workspace,
    sources: &'a [SourceFile],
    site: &AtomicSite,
    field: &str,
) -> &'a str {
    ws.fns
        .iter()
        .find(|f| {
            f.atomics
                .iter()
                .any(|s| s.line == site.line && s.field == field)
        })
        .map_or("", |f| sources[f.file].rel_path.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::lexer::lex;

    fn run(text: &str) -> Vec<Finding> {
        let src = SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(text),
            lines: text.lines().map(str::to_string).collect(),
        };
        let sources = vec![src];
        let ws = Workspace::build(&sources);
        check(&ws, &sources)
    }

    #[test]
    fn release_without_acquire_fires() {
        let out = run(
            "impl S {\n    fn publish(&self) { self.head.store(1, Ordering::Release); }\n    fn peek(&self) -> u64 { self.head.load(Ordering::Relaxed) }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("publishes to nobody"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let out = run(
            "impl S {\n    fn publish(&self) { self.head.store(1, Ordering::Release); }\n    fn take(&self) -> u64 { self.head.load(Ordering::Acquire) }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn acquire_with_only_relaxed_stores_fires() {
        let out = run(
            "impl S {\n    fn bump(&self) { self.n.store(1, Ordering::Relaxed); }\n    fn read(&self) -> u64 { self.n.load(Ordering::Acquire) }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("synchronizes with nothing"));
    }

    #[test]
    fn load_only_acquire_scope_is_tolerated() {
        let out =
            run("impl S {\n    fn read(&self) -> u64 { self.n.load(Ordering::Acquire) }\n}\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn relaxed_only_without_marker_fires() {
        let out = run(
            "impl S {\n    fn bump(&self) { self.n.fetch_add(1, Ordering::Relaxed); }\n    fn read(&self) -> u64 { self.n.load(Ordering::Relaxed) }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("relaxed-ok"));
    }

    #[test]
    fn relaxed_only_with_marker_is_clean() {
        let out = run(
            "impl S {\n    fn bump(&self) {\n        // ORDERING: relaxed-ok — monotone counter, readers tolerate lag.\n        self.n.fetch_add(1, Ordering::Relaxed);\n    }\n    fn read(&self) -> u64 { self.n.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn same_field_name_in_two_impls_is_not_conflated() {
        // A::n has the marker; B::n does not — only B fires.
        let out = run(
            "impl A {\n    fn f(&self) {\n        // ORDERING: relaxed-ok — advisory.\n        self.n.load(Ordering::Relaxed);\n    }\n}\nimpl B {\n    fn g(&self) { self.n.load(Ordering::Relaxed); }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`B::n`"), "{}", out[0].message);
    }

    #[test]
    fn cas_failure_ordering_counts_as_load() {
        // Release store paired by the Acquire failure ordering of a CAS.
        let out = run(
            "impl S {\n    fn pub_(&self) { self.h.store(1, Ordering::Release); }\n    fn cas(&self) { let _ = self.h.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
