//! **ordering-audit** — every atomic ordering choice must be argued.
//!
//! A `Relaxed` that should have been `Release` does not crash: it silently
//! skews estimates, which in an approximate-counting codebase is the worst
//! possible failure mode (wrong numbers that look right). So every use of
//! `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` must carry a
//! justification comment containing `ORDERING:` — stating the
//! happens-before edge it provides, or why none is needed — ending within
//! 3 lines above the use site (or trailing on the same line). Consecutive
//! `//` lines count as one comment block, so a multi-line argument only
//! needs its *block* to end close to the site.

use crate::lexer::Comment;
use crate::{Finding, SourceFile};

/// The five memory orderings of `std::sync::atomic::Ordering`.
const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines above the use site a justification block may end.
const WINDOW: usize = 3;

/// Runs the pass over one file.
#[must_use]
pub fn check(src: &SourceFile) -> Vec<Finding> {
    let blocks = coalesce(&src.lexed.comments);
    let mut findings = Vec::new();
    for (idx, line) in src.lexed.scrubbed.lines().enumerate() {
        let line_no = idx + 1;
        let mut from = 0;
        while let Some(pos) = line[from..].find("Ordering::") {
            let at = from + pos;
            let rest = &line[at + "Ordering::".len()..];
            from = at + "Ordering::".len();
            let Some(variant) = VARIANTS
                .iter()
                .find(|v| rest.starts_with(**v) && !continues_ident(rest, v.len()))
            else {
                continue;
            };
            if !justified(&blocks, line_no) {
                findings.push(Finding {
                    pass: "ordering-audit",
                    file: src.rel_path.clone(),
                    line: line_no,
                    message: format!(
                        "Ordering::{variant} without justification — add an `// ORDERING:` \
                         comment ending within {WINDOW} lines above stating the happens-before \
                         edge (or why none is needed)"
                    ),
                });
            }
        }
    }
    findings
}

fn continues_ident(rest: &str, len: usize) -> bool {
    rest.as_bytes()
        .get(len)
        .is_some_and(|&b| super::is_ident(b))
}

/// A comment block: consecutive comment lines merged.
struct Block {
    end_line: usize,
    has_marker: bool,
}

fn coalesce(comments: &[Comment]) -> Vec<Block> {
    let mut blocks: Vec<Block> = Vec::new();
    for c in comments {
        let marker = c.text.contains("ORDERING:");
        match blocks.last_mut() {
            Some(last) if c.line <= last.end_line + 1 => {
                last.end_line = last.end_line.max(c.end_line);
                last.has_marker |= marker;
            }
            _ => blocks.push(Block {
                end_line: c.end_line,
                has_marker: marker,
            }),
        }
    }
    blocks
}

fn justified(blocks: &[Block], site_line: usize) -> bool {
    blocks
        .iter()
        .any(|b| b.has_marker && b.end_line <= site_line && site_line - b.end_line <= WINDOW)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, lexer::lex, SourceFile};

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(src),
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    #[test]
    fn bare_ordering_fires() {
        let f = file("let v = a.load(Ordering::Relaxed);\n");
        let findings = check(&f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Relaxed"));
    }

    #[test]
    fn justified_ordering_passes() {
        let f = file(
            "// ORDERING: relaxed-ok — monotone counter, read at quiescence only.\nlet v = a.load(Ordering::Relaxed);\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn trailing_comment_on_same_line_counts() {
        let f = file("a.store(1, Ordering::Release); // ORDERING: publishes the init above\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn multiline_block_justifies_when_it_ends_close() {
        let f = file(
            "// ORDERING: Relaxed is enough here because the per-word RMW\n// total order picks a unique winner and the flipped bit\n// publishes no other memory to its observers.\nlet w = a.fetch_or(m, Ordering::Relaxed);\n",
        );
        assert!(check(&f).is_empty(), "block ends 1 line above the site");
    }

    #[test]
    fn too_far_away_fires() {
        let f = file(
            "// ORDERING: stale justification\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet d = 4;\nlet v = x.load(Ordering::Acquire);\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn comment_below_does_not_count() {
        let f = file("let v = x.load(Ordering::SeqCst);\n// ORDERING: after the fact\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn ordering_in_string_or_comment_is_ignored() {
        let f = file(
            "let s = \"Ordering::Relaxed\";\n// mentions Ordering::SeqCst in prose\nlet r = r#\"Ordering::AcqRel\"#;\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn two_sites_same_line_need_one_comment() {
        let f = file(
            "// ORDERING: Relaxed CAS both ways — retry loop carries no payload.\nlet r = s.compare_exchange(a, b, Ordering::Relaxed, Ordering::Relaxed);\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn each_unjustified_site_reported() {
        let f = file("s.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n");
        assert_eq!(check(&f).len(), 2);
    }
}
