//! **unsafe-gate** — every first-party crate root forbids `unsafe`.
//!
//! The whole workspace is written without `unsafe` (even the software
//! prefetch is a `black_box` fold, not an intrinsic). That property is
//! only durable if every crate root says so: `#![forbid(unsafe_code)]`
//! cannot be overridden by an inner `#[allow]`, unlike the
//! `[workspace.lints]` inheritance it complements (which a crate could
//! silently opt out of by dropping `[lints] workspace = true`). The gate
//! checks the attribute is literally present in each crate's root source
//! file (`src/lib.rs`, falling back to `src/main.rs`).

use crate::{CrateManifest, Finding};
use std::path::Path;

/// Runs the pass over every discovered first-party crate.
#[must_use]
pub fn check(root: &Path, crates: &[CrateManifest]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in crates {
        let (rel_root, abs) = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|cand| {
                let rel = if c.rel_dir.is_empty() {
                    (*cand).to_string()
                } else {
                    format!("{}/{cand}", c.rel_dir)
                };
                let abs = c.dir.join(cand);
                (rel, abs)
            })
            .find(|(_, abs)| abs.exists())
            .unwrap_or_else(|| {
                let rel = if c.rel_dir.is_empty() {
                    "src/lib.rs".to_string()
                } else {
                    format!("{}/src/lib.rs", c.rel_dir)
                };
                (rel.clone(), root.join(rel))
            });
        let Ok(text) = std::fs::read_to_string(&abs) else {
            findings.push(Finding {
                pass: "unsafe-gate",
                file: rel_root,
                line: 0,
                message: "crate has no readable root source file".to_string(),
            });
            continue;
        };
        let lexed = crate::lexer::lex(&text);
        if !lexed.scrubbed.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                pass: "unsafe-gate",
                file: rel_root,
                line: 1,
                message: "crate root must carry #![forbid(unsafe_code)] — the workspace is \
                          unsafe-free by construction and forbid cannot be locally overridden"
                    .to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_crate(dir: &Path, root_file: &str, content: &str) -> CrateManifest {
        let src = dir.join("src");
        std::fs::create_dir_all(&src).expect("mkdir");
        std::fs::write(src.join(root_file), content).expect("write");
        CrateManifest {
            dir: dir.to_path_buf(),
            rel_dir: "crates/fake".to_string(),
        }
    }

    #[test]
    fn missing_forbid_fires_and_present_passes() {
        let tmp = std::env::temp_dir().join(format!("analyzer-gate-{}", std::process::id()));
        let bad_dir = tmp.join("bad");
        let good_dir = tmp.join("good");
        let bad = fake_crate(&bad_dir, "lib.rs", "//! no gate here\npub fn f() {}\n");
        let good = fake_crate(
            &good_dir,
            "lib.rs",
            "//! gated\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let findings = check(&tmp, &[bad, good]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("forbid(unsafe_code)"));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn attribute_inside_comment_does_not_count() {
        let tmp = std::env::temp_dir().join(format!("analyzer-gate2-{}", std::process::id()));
        let dir = tmp.join("sneaky");
        let sneaky = fake_crate(
            &dir,
            "lib.rs",
            "// #![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let findings = check(&tmp, &[sneaky]);
        assert_eq!(findings.len(), 1);
        std::fs::remove_dir_all(&tmp).ok();
    }
}
