//! **lock-order** — global lock-acquisition graph, cycles are findings.
//!
//! Per-function lock sequences (with conservative guard hold spans from
//! the parser: to end of enclosing block for `let`-bound guards, end of
//! statement for temporaries) are lifted to a workspace-level directed
//! graph:
//!
//! * **intra-function edge** `A → B` when `B` is acquired inside `A`'s
//!   hold span;
//! * **inter-procedural edge** `A → B` when, inside `A`'s hold span, the
//!   function makes a call that strictly resolves (see
//!   [`Workspace::resolve_strict`]) to a function whose *transitive*
//!   acquisition set contains `B`.
//!
//! Any cycle — including the length-1 cycle of re-acquiring a
//! non-reentrant lock already held — is a deadlock-potential finding.
//! Lock identity is `Impl::field` for `self.field` guards and
//! `file::fn::name` for locals, so unrelated locks of the same field
//! name in different types stay distinct.

use crate::callgraph::Workspace;
use crate::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Pass name as it appears in findings and `--pass` selection.
pub const NAME: &str = "lock-order";

/// One directed edge with its witness location.
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
}

/// Stable identity of the lock behind a guard.
fn lock_id(
    ws: &Workspace,
    sources: &[SourceFile],
    fn_idx: usize,
    site: &crate::parser::LockSite,
) -> String {
    let f = &ws.fns[fn_idx];
    let file = &sources[f.file].rel_path;
    if site.via_self {
        let scope = f.impl_type.as_deref().unwrap_or(file);
        format!("{scope}::{}", site.name)
    } else {
        format!("{file}::{}::{}", f.name, site.name)
    }
}

/// Runs the pass over the parsed workspace.
#[must_use]
pub fn check(ws: &Workspace, sources: &[SourceFile]) -> Vec<Finding> {
    // Transitive acquisition sets: fixpoint over strict call edges.
    let mut acquired: Vec<BTreeSet<String>> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| f.locks.iter().map(|l| lock_id(ws, sources, i, l)).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            let calls = ws.fns[i].calls.clone();
            for call in &calls {
                for callee in ws.resolve_strict(i, call) {
                    if callee == i {
                        continue;
                    }
                    let add: Vec<String> = acquired[callee]
                        .iter()
                        .filter(|id| !acquired[i].contains(*id))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        acquired[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges.
    let mut edges: Vec<Edge> = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let file = sources[f.file].rel_path.clone();
        for (ai, a) in f.locks.iter().enumerate() {
            let a_id = lock_id(ws, sources, i, a);
            // Locks acquired while `a` is held.
            for (bi, b) in f.locks.iter().enumerate() {
                if ai != bi && a.offset < b.offset && b.offset < a.hold_end {
                    edges.push(Edge {
                        from: a_id.clone(),
                        to: lock_id(ws, sources, i, b),
                        file: file.clone(),
                        line: b.line,
                    });
                }
            }
            // Calls made while `a` is held, pulling in callee acquisitions.
            for call in &f.calls {
                if call.offset <= a.offset || call.offset >= a.hold_end {
                    continue;
                }
                for callee in ws.resolve_strict(i, call) {
                    for to in &acquired[callee] {
                        edges.push(Edge {
                            from: a_id.clone(),
                            to: to.clone(),
                            file: file.clone(),
                            line: call.line,
                        });
                    }
                }
            }
        }
    }

    findings_from_edges(&edges)
}

/// Cycle detection over the edge list; one finding per distinct cycle
/// node-set, anchored at the lexicographically first witness edge.
fn findings_from_edges(edges: &[Edge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let witness = |from: &str, to: &str| -> Option<(&str, usize)> {
        edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| (e.file.as_str(), e.line))
    };

    let mut out = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();

    // Self-loops: immediate double acquisition.
    for (node, nexts) in &adj {
        if nexts.contains(node) {
            let (file, line) = witness(node, node).unwrap_or(("", 0));
            out.push(Finding {
                pass: NAME,
                file: file.to_string(),
                line,
                message: format!(
                    "lock `{node}` is acquired while already held — parking_lot \
                     locks are not reentrant; this deadlocks"
                ),
            });
            reported.insert([node.to_string()].into_iter().collect());
        }
    }

    // Longer cycles: for each node, DFS looking for a path back to it.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut path: Vec<&str> = Vec::new();
        if let Some(cycle) = dfs_cycle(start, start, &adj, &mut visited, &mut path, &mut stack) {
            let set: BTreeSet<String> = cycle.iter().map(|s| (*s).to_string()).collect();
            if set.len() < 2 || reported.contains(&set) {
                continue;
            }
            reported.insert(set);
            let (file, line) = witness(cycle[0], cycle[1]).unwrap_or(("", 0));
            out.push(Finding {
                pass: NAME,
                file: file.to_string(),
                line,
                message: format!(
                    "lock-order cycle: {} — concurrent callers taking these locks \
                     in different orders can deadlock",
                    cycle.join(" -> ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| a.message == b.message);
    out
}

/// DFS from `at` looking for an edge path back to `start`; returns the
/// cycle's node sequence (starting at `start`, length ≥ 2) when found.
fn dfs_cycle<'a>(
    start: &'a str,
    at: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    visited: &mut BTreeSet<&'a str>,
    path: &mut Vec<&'a str>,
    _stack: &mut Vec<&'a str>,
) -> Option<Vec<&'a str>> {
    path.push(at);
    if let Some(nexts) = adj.get(at) {
        for &next in nexts {
            if next == start && path.len() >= 2 {
                return Some(path.clone());
            }
            if visited.insert(next) {
                if let Some(c) = dfs_cycle(start, next, adj, visited, path, _stack) {
                    return Some(c);
                }
            }
        }
    }
    path.pop();
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::lexer::lex;

    fn run(text: &str) -> Vec<Finding> {
        let src = SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(text),
            lines: text.lines().map(str::to_string).collect(),
        };
        let sources = vec![src];
        let ws = Workspace::build(&sources);
        check(&ws, &sources)
    }

    #[test]
    fn opposite_orders_in_one_impl_is_a_cycle() {
        let out = run(
            "impl S {\n    fn ab(&self) {\n        let a = self.a.lock();\n        let b = self.b.lock();\n        drop(b); drop(a);\n    }\n    fn ba(&self) {\n        let b = self.b.lock();\n        let a = self.a.lock();\n        drop(a); drop(b);\n    }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("lock-order cycle"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = run(
            "impl S {\n    fn ab(&self) {\n        let a = self.a.lock();\n        let b = self.b.lock();\n        drop(b); drop(a);\n    }\n    fn ab2(&self) {\n        let a = self.a.lock();\n        let b = self.b.lock();\n        drop(b); drop(a);\n    }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cycle_through_intermediate_call_is_found() {
        let out = run(
            "impl S {\n    fn outer(&self) {\n        let a = self.a.lock();\n        self.helper();\n        drop(a);\n    }\n    fn helper(&self) {\n        let b = self.b.lock();\n        drop(b);\n    }\n    fn other(&self) {\n        let b = self.b.lock();\n        let a = self.a.lock();\n        drop(a); drop(b);\n    }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn reacquire_while_held_is_a_self_loop() {
        let out = run(
            "impl S {\n    fn bad(&self) {\n        let a = self.m.lock();\n        let b = self.m.lock();\n        drop(b); drop(a);\n    }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("already held"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn write_then_read_in_disjoint_blocks_is_clean() {
        // The window.rs shape: a block-scoped write guard released before
        // a fn-level read guard is taken. No overlap, no finding.
        let out = run(
            "impl W {\n    fn ingest(&self) {\n        {\n            let mut w = self.slices.write();\n            w.push(1);\n        }\n        let r = self.slices.read();\n        r.len();\n    }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn temporary_guards_in_sequence_are_clean() {
        // sharded.rs shape: `self.shard(k).lock().add(…)` temporaries in
        // a row never overlap.
        let out = run(
            "impl M {\n    fn add(&self) {\n        self.shards.lock().add(1);\n        self.shards.lock().add(2);\n    }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn distinct_types_same_field_name_not_conflated() {
        let out = run(
            "impl A {\n    fn f(&self) {\n        let g = self.m.lock();\n        let h = self.n.lock();\n        drop(h); drop(g);\n    }\n}\nimpl B {\n    fn g(&self) {\n        let h = self.n.lock();\n        let g = self.m.lock();\n        drop(g); drop(h);\n    }\n}\n",
        );
        assert!(
            out.is_empty(),
            "A::{{m,n}} and B::{{n,m}} are different locks: {out:?}"
        );
    }
}
