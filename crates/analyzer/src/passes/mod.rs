//! The lint passes and their shared text utilities.
//!
//! All passes operate on [`crate::SourceFile`]s — i.e. on the *scrubbed*
//! code view of [`crate::lexer`], so nothing inside a string literal or a
//! comment can ever trigger (or hide) a finding.

pub mod atomic_protocol;
pub mod hot_path;
pub mod lock_order;
pub mod locks;
pub mod ordering;
pub mod serde_sync;
pub mod unsafe_gate;

use crate::lexer::Lexed;

/// Whether `c` can be part of an identifier.
pub(crate) fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of every occurrence of `needle` in `hay` that is not
/// embedded in a longer identifier (checked on both sides).
pub(crate) fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Skips ASCII whitespace forward from `i`, returning the next offset.
pub(crate) fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Given `open` pointing at a `{`/`(`/`[`, returns the offset one past the
/// matching closer, or `len` when unbalanced (auditors never panic).
pub(crate) fn match_delim(bytes: &[u8], open: usize) -> usize {
    let (o, c) = match bytes.get(open) {
        Some(b'{') => (b'{', b'}'),
        Some(b'(') => (b'(', b')'),
        Some(b'[') => (b'[', b']'),
        _ => return bytes.len(),
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == o {
            depth += 1;
        } else if bytes[i] == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// 1-based line ranges of `#[cfg(test)] mod …` bodies in a scrubbed file.
///
/// Lock-discipline exempts these regions: test code panics by design.
pub(crate) fn test_mod_line_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let s = &lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    for at in word_occurrences(s, "#[cfg(test)]") {
        let mut i = at + "#[cfg(test)]".len();
        // Skip further attributes between the cfg and the item.
        loop {
            i = skip_ws(bytes, i);
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                i = match_delim(bytes, i + 1);
            } else {
                break;
            }
        }
        // Only `mod` bodies form exempt regions (a `#[cfg(test)] fn` at
        // file scope is unusual enough to deserve the lint).
        if !s[i..].starts_with("mod") {
            continue;
        }
        let Some(brace) = s[i..].find('{').map(|p| i + p) else {
            continue;
        };
        let end = match_delim(bytes, brace);
        out.push((lexed.line_of(at), lexed.line_of(end.saturating_sub(1))));
    }
    out
}

/// Whether 1-based `line` falls in any of `ranges` (inclusive).
pub(crate) fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn word_occurrences_respect_boundaries() {
        let hay = "panic! my_panic! panicky panic!";
        let hits = word_occurrences(hay, "panic!");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 0);
    }

    #[test]
    fn test_mod_region_detected() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let ranges = test_mod_line_ranges(&lexed);
        assert_eq!(ranges, vec![(2, 5)]);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 6));
    }

    #[test]
    fn cfg_test_with_extra_attr_between() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { }\n";
        let lexed = lex(src);
        assert_eq!(test_mod_line_ranges(&lexed), vec![(1, 3)]);
    }
}
