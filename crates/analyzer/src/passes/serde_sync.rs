//! **serde-sync** — manual serde impls must match their structs.
//!
//! The vendored serde stand-in cannot derive for generic types, so the
//! engine's checkpoint seam is hand-written: `Serialize` renders a
//! `Value::Map` of `("field".to_string(), …)` pairs and `Deserialize`
//! rebuilds through `serde::map_field(map, "field")`. Nothing ties those
//! string keys to the struct definition — add a field and forget one impl
//! and checkpoints silently lose state. This pass extracts, per manual
//! impl, the set of field-key string literals (the `"…".to_string()` and
//! `map_field(…, "…")` idioms) and cross-checks it against the struct's
//! field list: any field present in one but not the other is a finding.
//!
//! Tuple structs and impls for types whose definition is not in the
//! workspace are skipped; unit structs must use zero keys.

use crate::{Finding, SourceFile};
use std::collections::{BTreeSet, HashMap};

/// Runs the pass over the whole workspace (struct definitions and impls
/// may live in different files).
#[must_use]
pub fn check(sources: &[SourceFile]) -> Vec<Finding> {
    let mut structs: HashMap<String, Vec<StructDef>> = HashMap::new();
    for src in sources {
        for def in parse_structs(src) {
            structs.entry(def.name.clone()).or_default().push(def);
        }
    }

    let mut findings = Vec::new();
    for src in sources {
        for im in parse_impls(src) {
            let Some(def) = resolve(&structs, &im.target, &src.rel_path) else {
                continue;
            };
            let Fields::Named(fields) = &def.fields else {
                continue; // tuple structs have no field keys to check
            };
            let keys = match im.kind {
                Kind::Serialize => serialize_keys(src, im.start, im.end),
                Kind::Deserialize => deserialize_keys(src, im.start, im.end),
            };
            let field_set: BTreeSet<&str> = fields.iter().map(String::as_str).collect();
            let key_set: BTreeSet<&str> = keys.iter().map(String::as_str).collect();
            let impl_name = match im.kind {
                Kind::Serialize => "Serialize",
                Kind::Deserialize => "Deserialize",
            };
            for missing in field_set.difference(&key_set) {
                findings.push(Finding {
                    pass: "serde-sync",
                    file: src.rel_path.clone(),
                    line: im.line,
                    message: format!(
                        "manual {impl_name} impl for `{}` does not handle field `{missing}` \
                         (declared in {}) — checkpoints would silently drop it",
                        im.target, def.file
                    ),
                });
            }
            for extra in key_set.difference(&field_set) {
                findings.push(Finding {
                    pass: "serde-sync",
                    file: src.rel_path.clone(),
                    line: im.line,
                    message: format!(
                        "manual {impl_name} impl for `{}` uses key `{extra}` which is not a \
                         field of the struct (declared in {})",
                        im.target, def.file
                    ),
                });
            }
        }
    }
    findings
}

/// A struct definition found in the workspace.
#[derive(Debug)]
struct StructDef {
    name: String,
    file: String,
    fields: Fields,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Serialize,
    Deserialize,
}

/// A manual serde impl: byte span `[start, end)` in the scrubbed text.
#[derive(Debug)]
struct ManualImpl {
    kind: Kind,
    target: String,
    line: usize,
    start: usize,
    end: usize,
}

fn resolve<'a>(
    structs: &'a HashMap<String, Vec<StructDef>>,
    name: &str,
    impl_file: &str,
) -> Option<&'a StructDef> {
    let defs = structs.get(name)?;
    defs.iter()
        .find(|d| d.file == impl_file)
        .or_else(|| (defs.len() == 1).then(|| &defs[0]))
}

fn parse_structs(src: &SourceFile) -> Vec<StructDef> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    for at in super::word_occurrences(s, "struct") {
        let mut i = super::skip_ws(bytes, at + "struct".len());
        let name = read_ident(s, i);
        if name.is_empty() {
            continue;
        }
        i += name.len();
        i = skip_generics(bytes, super::skip_ws(bytes, i));
        // Scan past an optional where clause to the body opener.
        let Some((opener, body)) = find_body(bytes, i) else {
            continue;
        };
        let fields = match opener {
            b';' => Fields::Named(Vec::new()), // unit struct
            b'(' => Fields::Tuple,
            _ => Fields::Named(parse_named_fields(s, body)),
        };
        out.push(StructDef {
            name,
            file: src.rel_path.clone(),
            fields,
        });
    }
    out
}

/// From `i`, finds the struct body opener (`{`, `(`, or `;`) at depth 0,
/// returning it and its offset.
fn find_body(bytes: &[u8], mut i: usize) -> Option<(u8, usize)> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'(' if angle > 0 => paren += 1,
            b')' if angle > 0 => paren -= 1,
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {} // `->` in a bound
            b'>' if angle > 0 => angle -= 1,
            b'{' | b'(' | b';' if paren == 0 && angle == 0 => return Some((bytes[i], i)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Field names of a named-struct body whose `{` is at `open`.
fn parse_named_fields(s: &str, open: usize) -> Vec<String> {
    let bytes = s.as_bytes();
    let end = super::match_delim(bytes, open);
    let body = &s[open + 1..end.saturating_sub(1)];
    split_top_level(body)
        .into_iter()
        .filter_map(|decl| {
            // Strip attributes and visibility, then take `ident :`.
            let b = decl.as_bytes();
            let mut i = super::skip_ws(b, 0);
            while b.get(i) == Some(&b'#') && b.get(i + 1) == Some(&b'[') {
                i = super::skip_ws(b, super::match_delim(b, i + 1));
            }
            if decl[i..].starts_with("pub") {
                i += 3;
                i = super::skip_ws(b, i);
                if b.get(i) == Some(&b'(') {
                    i = super::skip_ws(b, super::match_delim(b, i));
                }
            }
            let name = read_ident(&decl, i);
            let after = super::skip_ws(b, i + name.len());
            (!name.is_empty() && b.get(after) == Some(&b':')).then_some(name)
        })
        .collect()
}

/// Splits `body` on commas at zero paren/bracket/angle depth.
fn split_top_level(body: &str) -> Vec<String> {
    let bytes = body.as_bytes();
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    let mut parts = Vec::new();
    let mut start = 0;
    for (i, &c) in bytes.iter().enumerate() {
        match c {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {} // `->` arrow
            b'>' if angle > 0 => angle -= 1,
            b',' if paren == 0 && bracket == 0 && angle == 0 => {
                parts.push(body[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        parts.push(body[start..].to_string());
    }
    parts
}

fn read_ident(s: &str, i: usize) -> String {
    s[i..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

fn parse_impls(src: &SourceFile) -> Vec<ManualImpl> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    for at in super::word_occurrences(s, "impl") {
        let mut i = super::skip_ws(bytes, at + "impl".len());
        if bytes.get(i) == Some(&b'<') {
            i = skip_generics(bytes, i);
        }
        // The trait path sits between here and ` for `; without a `for`
        // before the body opens, this is an inherent impl.
        let Some(body_open) = s[i..].find('{').map(|p| i + p) else {
            continue;
        };
        let Some(for_at) = super::word_occurrences(&s[i..body_open], "for")
            .first()
            .map(|p| i + p)
        else {
            continue;
        };
        let trait_part = &s[i..for_at];
        let kind = if !super::word_occurrences(trait_part, "Serialize").is_empty() {
            Kind::Serialize
        } else if !super::word_occurrences(trait_part, "Deserialize").is_empty() {
            Kind::Deserialize
        } else {
            continue;
        };
        let mut j = super::skip_ws(bytes, for_at + "for".len());
        let mut target = String::new();
        loop {
            let seg = read_ident(s, j);
            if seg.is_empty() {
                break;
            }
            j += seg.len();
            target = seg;
            if s[j..].starts_with("::") {
                j += 2;
            } else {
                break;
            }
        }
        if target.is_empty() {
            continue;
        }
        let end = super::match_delim(bytes, body_open);
        out.push(ManualImpl {
            kind,
            target,
            line: src.lexed.line_of(at),
            start: body_open,
            end,
        });
    }
    out
}

/// Skips a `<…>` group starting at `i` (angle-matched, `->` aware).
fn skip_generics(bytes: &[u8], i: usize) -> usize {
    if bytes.get(i) != Some(&b'<') {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// Keys of a manual `Serialize` impl: string literals immediately followed
/// by `.to_string()` — the `("field".to_string(), value)` map-pair idiom.
fn serialize_keys(src: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let s = &src.lexed.scrubbed;
    let bytes = s.as_bytes();
    src.lexed
        .strings
        .iter()
        .filter(|lit| lit.start >= start && lit.end <= end)
        .filter(|lit| {
            let after = super::skip_ws(bytes, lit.end);
            s[after..].starts_with(".to_string()")
        })
        .map(|lit| lit.value.clone())
        .collect()
}

/// Keys of a manual `Deserialize` impl: the first string literal after
/// each `map_field` call (before the next one).
fn deserialize_keys(src: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let s = &src.lexed.scrubbed;
    let calls: Vec<usize> = super::word_occurrences(&s[start..end], "map_field")
        .into_iter()
        .map(|p| start + p)
        .collect();
    let mut keys = Vec::new();
    for (idx, &call) in calls.iter().enumerate() {
        let limit = calls.get(idx + 1).copied().unwrap_or(end);
        if let Some(lit) = src
            .lexed
            .strings
            .iter()
            .find(|lit| lit.start > call && lit.start < limit)
        {
            keys.push(lit.value.clone());
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, lexer::lex};

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(src),
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    const GOOD: &str = r#"
pub struct Engine<S> {
    store: S,
    total: f64,
}

impl<S: serde::Serialize> serde::Serialize for Engine<S> {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("store".to_string(), self.store.serialize_value()),
            ("total".to_string(), self.total.serialize_value()),
        ])
    }
}

impl<S: serde::Deserialize> serde::Deserialize for Engine<S> {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v.as_map().ok_or_else(|| serde::Error::custom("expected Engine map"))?;
        Ok(Self {
            store: S::deserialize_value(serde::map_field(map, "store")?)?,
            total: f64::deserialize_value(serde::map_field(map, "total")?)?,
        })
    }
}
"#;

    #[test]
    fn matching_impls_pass() {
        assert!(check(&[file(GOOD)]).is_empty());
    }

    #[test]
    fn missing_serialize_key_fires() {
        let src = GOOD.replace("(\"total\".to_string(), self.total.serialize_value()),", "");
        let findings = check(&[file(&src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`total`"));
        assert!(findings[0].message.contains("Serialize"));
    }

    #[test]
    fn missing_deserialize_key_fires() {
        let src = GOOD.replace(
            "total: f64::deserialize_value(serde::map_field(map, \"total\")?)?,",
            "total: 0.0,",
        );
        let findings = check(&[file(&src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Deserialize"));
    }

    #[test]
    fn extra_key_fires() {
        let src = GOOD.replace(
            "(\"total\".to_string(), self.total.serialize_value()),",
            "(\"total\".to_string(), self.total.serialize_value()),\n            (\"legacy\".to_string(), serde::Value::Null),",
        );
        let findings = check(&[file(&src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`legacy`"));
    }

    #[test]
    fn unit_struct_with_no_keys_passes() {
        let src = "pub struct Marker;\nimpl serde::Serialize for Marker {\n    fn serialize_value(&self) -> serde::Value { serde::Value::Null }\n}\n";
        assert!(check(&[file(src)]).is_empty());
    }

    #[test]
    fn error_message_literals_are_not_keys() {
        // "expected Engine map" inside Error::custom must not count as a
        // field key (it is neither `.to_string()`-ed nor a map_field arg).
        assert!(check(&[file(GOOD)]).is_empty());
    }

    #[test]
    fn unknown_target_is_skipped() {
        let src = "impl serde::Serialize for External {\n    fn serialize_value(&self) -> serde::Value { serde::Value::Null }\n}\n";
        assert!(check(&[file(src)]).is_empty());
    }

    #[test]
    fn derive_attribute_is_not_a_manual_impl() {
        let src = "#[derive(serde::Serialize, serde::Deserialize)]\npub struct D { x: u64 }\n";
        assert!(check(&[file(src)]).is_empty());
    }

    #[test]
    fn struct_with_fn_trait_field_parses() {
        let src = "pub struct W<E> {\n    factory: Box<dyn Fn(u64) -> E + Send + Sync>,\n    max: usize,\n}\n";
        let defs = parse_structs(&file(src));
        assert_eq!(defs.len(), 1);
        match &defs[0].fields {
            Fields::Named(f) => assert_eq!(f, &["factory".to_string(), "max".to_string()]),
            Fields::Tuple => panic!("not a tuple struct"),
        }
    }
}
