//! **hot-path-hygiene** — no steady-state allocation downstream of
//! `// HOT` roots.
//!
//! PR 8's ingest numbers (74M edges/s through `process_batch`) can be
//! quietly regressed by one stray `format!` or `.clone()` in the phased
//! loop — the compiler will not object, the benchmark just gets slower.
//! This pass mechanizes the budget: a function annotated with a
//! `// HOT` comment (within 3 lines above the `fn`, attributes in
//! between allowed) is a hot-path root, and every library function
//! reachable from a root through the broad call graph (see
//! [`Workspace::resolve_broad`]) must not contain allocation-shaped
//! expressions — `vec!`, `format!`, `Box::new`/`Arc::new`/`Rc::new`,
//! `String`/`Vec`/`VecDeque` constructors, `.clone()`, `.to_string()`,
//! `.to_owned()`, `.to_vec()`, `.collect()`.
//!
//! Deliberate allocations (setup buffers sized once per run, amortized
//! container growth) are escaped per site through `analyzer-allow.toml`
//! entries with `pass = "hot-path-hygiene"` — each with a reason, and
//! reported stale when the site disappears.
//!
//! Amortized `.push(…)`/`.extend(…)` onto pre-reserved containers is
//! *not* flagged: reserve-then-fill is the idiom the batch path is built
//! on, and flagging it would make the allowlist the rule instead of the
//! exception.

use crate::callgraph::Workspace;
use crate::{Finding, SourceFile};

/// Pass name as it appears in findings and `--pass` selection.
pub const NAME: &str = "hot-path-hygiene";

/// Runs the pass over the parsed workspace.
#[must_use]
pub fn check(ws: &Workspace, sources: &[SourceFile]) -> Vec<Finding> {
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.hot)
        .map(|(i, _)| i)
        .collect();
    let reachable = ws.reachable_broad(&roots);

    let mut out = Vec::new();
    for (&idx, &root) in &reachable {
        let f = &ws.fns[idx];
        let file = &sources[f.file].rel_path;
        let via = if root == idx {
            String::new()
        } else {
            format!(", reachable from hot root `{}`", ws.fns[root].qualified())
        };
        for site in &f.allocs {
            out.push(Finding {
                pass: NAME,
                file: file.clone(),
                line: site.line,
                message: format!(
                    "`{}` allocates on the hot path (`{}` in `{}`{via}) — hoist it \
                     out of the steady state or argue it in analyzer-allow.toml",
                    site.what,
                    site.what,
                    f.qualified()
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::lexer::lex;

    fn run(text: &str) -> Vec<Finding> {
        let src = SourceFile {
            rel_path: "crates/x/src/lib.rs".to_string(),
            category: classify("crates/x/src/lib.rs"),
            lexed: lex(text),
            lines: text.lines().map(str::to_string).collect(),
        };
        let sources = vec![src];
        let ws = Workspace::build(&sources);
        check(&ws, &sources)
    }

    #[test]
    fn allocation_in_hot_root_fires() {
        let out = run(
            "// HOT: batch ingest root.\nfn process_batch() {\n    let scratch = vec![0u64; 512];\n    drop(scratch);\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("vec!"), "{}", out[0].message);
    }

    #[test]
    fn allocation_reached_through_call_fires_with_provenance() {
        let out = run(
            "// HOT\nfn root() { helper(); }\nfn helper() { let s = String::new(); drop(s); }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("reachable from hot root `root`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn unreachable_allocation_is_ignored() {
        let out = run("// HOT\nfn root() {}\nfn cold() { let v = vec![1]; drop(v); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn clean_hot_path_is_clean() {
        let out =
            run("// HOT\nfn root(buf: &mut [u64]) { for b in buf.iter_mut() { *b += 1; } }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn clone_in_hot_path_fires() {
        let out = run("// HOT\nfn root(v: &Vec<u64>) -> Vec<u64> { v.clone() }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("clone"));
    }

    #[test]
    fn no_roots_means_no_findings() {
        let out = run("fn anything() { let v = vec![1]; drop(v); }\n");
        assert!(out.is_empty(), "{out:?}");
    }
}
