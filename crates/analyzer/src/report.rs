//! Rendering findings — human `file:line: [pass] message` lines and a
//! hand-rolled JSON array (the workspace builds offline; no serde here,
//! and depending on the crate under audit would be circular anyway).

use crate::Finding;
use std::fmt::Write as _;

/// Renders findings as human-readable diagnostics, one per line, sorted
/// by file then line, followed by a summary line.
#[must_use]
pub fn human(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    let mut out = String::new();
    for f in &sorted {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.pass, f.message);
    }
    if findings.is_empty() {
        let _ = writeln!(out, "analyzer: {files_scanned} files scanned, no findings");
    } else {
        let _ = writeln!(
            out,
            "analyzer: {files_scanned} files scanned, {} finding(s)",
            findings.len()
        );
    }
    out
}

/// Renders findings as a JSON document:
/// `{"files_scanned": N, "findings": [{"pass", "file", "line", "message"}]}`.
#[must_use]
pub fn json(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    let mut out = String::new();
    let _ = write!(out, "{{\"files_scanned\":{files_scanned},\"findings\":[");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pass\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            escape(f.pass),
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("]}\n");
    out
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            pass: "ordering-audit",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "needs an \"ORDERING:\" comment".to_string(),
        }
    }

    #[test]
    fn human_format_is_file_line_pass() {
        let out = human(&[finding()], 3);
        assert!(out.starts_with("crates/x/src/lib.rs:7: [ordering-audit] "));
        assert!(out.contains("3 files scanned, 1 finding(s)"));
    }

    #[test]
    fn clean_run_summary() {
        let out = human(&[], 42);
        assert_eq!(out, "analyzer: 42 files scanned, no findings\n");
    }

    #[test]
    fn json_escapes_quotes() {
        let out = json(&[finding()], 3);
        assert!(out.contains("\\\"ORDERING:\\\""));
        assert!(out.starts_with("{\"files_scanned\":3,"));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn json_empty_findings() {
        assert_eq!(json(&[], 5), "{\"files_scanned\":5,\"findings\":[]}\n");
    }
}
