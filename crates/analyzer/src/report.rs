//! Rendering findings — human `file:line: [pass] message` lines and a
//! hand-rolled JSON document (the workspace builds offline; no serde
//! here, and depending on the crate under audit would be circular
//! anyway). Both renderings carry the per-pass findings/timing summary
//! CI prints and archives.

use crate::{Finding, PassTiming};
use std::fmt::Write as _;

/// Renders findings as human-readable diagnostics, one per line, sorted
/// by file then line, followed by a per-pass summary and a totals line.
#[must_use]
pub fn human(findings: &[Finding], files_scanned: usize, timings: &[PassTiming]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    let mut out = String::new();
    for f in &sorted {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.pass, f.message);
    }
    for t in timings {
        let _ = writeln!(
            out,
            "analyzer: pass {:<17} {} finding(s) in {}µs",
            t.pass, t.findings, t.micros
        );
    }
    if findings.is_empty() {
        let _ = writeln!(out, "analyzer: {files_scanned} files scanned, no findings");
    } else {
        let _ = writeln!(
            out,
            "analyzer: {files_scanned} files scanned, {} finding(s)",
            findings.len()
        );
    }
    out
}

/// Renders findings as a JSON document:
/// `{"files_scanned": N, "passes": [{"pass", "findings", "micros"}],
/// "findings": [{"pass", "file", "line", "message"}]}`.
#[must_use]
pub fn json(findings: &[Finding], files_scanned: usize, timings: &[PassTiming]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    let mut out = String::new();
    let _ = write!(out, "{{\"files_scanned\":{files_scanned},\"passes\":[");
    for (i, t) in timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pass\":{},\"findings\":{},\"micros\":{}}}",
            escape(t.pass),
            t.findings,
            t.micros
        );
    }
    let _ = write!(out, "],\"findings\":[");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pass\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            escape(f.pass),
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("]}\n");
    out
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            pass: "ordering-audit",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "needs an \"ORDERING:\" comment".to_string(),
        }
    }

    fn timing() -> PassTiming {
        PassTiming {
            pass: "ordering-audit",
            findings: 1,
            micros: 120,
        }
    }

    #[test]
    fn human_format_is_file_line_pass() {
        let out = human(&[finding()], 3, &[]);
        assert!(out.starts_with("crates/x/src/lib.rs:7: [ordering-audit] "));
        assert!(out.contains("3 files scanned, 1 finding(s)"));
    }

    #[test]
    fn human_per_pass_summary() {
        let out = human(&[finding()], 3, &[timing()]);
        assert!(out.contains("analyzer: pass ordering-audit"), "{out}");
        assert!(out.contains("1 finding(s) in 120µs"), "{out}");
    }

    #[test]
    fn clean_run_summary() {
        let out = human(&[], 42, &[]);
        assert_eq!(out, "analyzer: 42 files scanned, no findings\n");
    }

    #[test]
    fn json_escapes_quotes() {
        let out = json(&[finding()], 3, &[]);
        assert!(out.contains("\\\"ORDERING:\\\""));
        assert!(out.starts_with("{\"files_scanned\":3,"));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn json_carries_pass_summary() {
        let out = json(&[], 5, &[timing()]);
        assert!(
            out.contains(
                "\"passes\":[{\"pass\":\"ordering-audit\",\"findings\":1,\"micros\":120}]"
            ),
            "{out}"
        );
    }

    #[test]
    fn json_empty_findings() {
        assert_eq!(
            json(&[], 5, &[]),
            "{\"files_scanned\":5,\"passes\":[],\"findings\":[]}\n"
        );
    }
}
