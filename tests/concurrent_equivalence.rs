//! Concurrent-extension integration: the lock-free FreeBS variant must
//! agree with the sequential reference on real workloads.

use freesketch::concurrent::ConcurrentFreeBS;
use freesketch::{CardinalityEstimator, FreeBS};
use graphstream::{GroundTruth, SynthConfig};
use std::sync::Arc;

#[test]
fn sequential_replay_is_bit_identical() {
    let stream = SynthConfig::tiny(21).generate();
    let conc = ConcurrentFreeBS::new(1 << 18, 4);
    let mut seq = FreeBS::new(1 << 18, 4);
    for e in stream.edges() {
        conc.process(e.user, e.item);
        seq.process(e.user, e.item);
    }
    let snap = conc.snapshot_estimates();
    assert_eq!(snap.len(), seq.user_count());
    for (&user, &est) in &snap {
        assert_eq!(est, seq.estimate(user), "user {user}");
    }
}

#[test]
fn parallel_processing_matches_truth_within_noise() {
    let stream = SynthConfig {
        users: 500,
        max_cardinality: 400,
        mean_cardinality: 20.0,
        duplication: 1.4,
        seed: 33,
    }
    .generate();
    let mut truth = GroundTruth::new();
    for e in stream.edges() {
        truth.observe(*e);
    }

    let conc = Arc::new(ConcurrentFreeBS::new(1 << 19, 6));
    let threads = 8;
    let chunk = stream.len().div_ceil(threads);
    std::thread::scope(|s| {
        for part in stream.edges().chunks(chunk) {
            let conc = Arc::clone(&conc);
            s.spawn(move || {
                for e in part {
                    conc.process(e.user, e.item);
                }
            });
        }
    });

    // Aggregate accuracy: total within 2%, per-user RMS relative error
    // small for the heavier half of users.
    let total = truth.total_cardinality() as f64;
    assert!(
        (conc.total_estimate() / total - 1.0).abs() < 0.02,
        "total {} vs {total}",
        conc.total_estimate()
    );
    let mut sq = 0.0;
    let mut k = 0usize;
    for (user, actual) in truth.iter() {
        if actual >= 20 {
            let rel = conc.estimate(user) / actual as f64 - 1.0;
            sq += rel * rel;
            k += 1;
        }
    }
    let rms = (sq / k as f64).sqrt();
    assert!(rms < 0.25, "per-user RMS relative error {rms}");
}

#[test]
fn contended_duplicates_stay_deduplicated() {
    // All threads process the SAME edges; dedup must hold under contention.
    let stream = SynthConfig::tiny(55).generate();
    let mut truth = GroundTruth::new();
    for e in stream.edges() {
        truth.observe(*e);
    }
    let conc = Arc::new(ConcurrentFreeBS::new(1 << 19, 8));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let conc = Arc::clone(&conc);
            let edges = stream.edges();
            s.spawn(move || {
                for e in edges {
                    conc.process(e.user, e.item);
                }
            });
        }
    });
    let total = truth.total_cardinality() as f64;
    assert!(
        (conc.total_estimate() / total - 1.0).abs() < 0.05,
        "4x-duplicated stream inflated the total: {} vs {total}",
        conc.total_estimate()
    );
}
