//! Build-surface smoke test: the exact promises the front-door docs make
//! (the `freesketch` crate-level doc example and `examples/quickstart.rs`)
//! hold when executed for real. If this file fails to compile, the umbrella
//! crate's re-export wiring is broken; if it fails at runtime, the README's
//! first-contact experience is lying.

use freesketch_suite::freesketch::{CardinalityEstimator, FreeBS, FreeRS};
use freesketch_suite::graphstream::{GroundTruth, SynthConfig};

/// The `crates/core/src/lib.rs` doc example, verbatim for FreeBS and the
/// equal-memory FreeRS analogue: 10k distinct items for one user, estimate
/// within 5%, duplicates absorbed.
#[test]
fn doc_example_promise_holds_for_freebs_and_freers() {
    let mut fbs = FreeBS::new(1 << 20, 42);
    let mut frs = FreeRS::new((1 << 20) / 5, 42);
    for item in 0..10_000u64 {
        fbs.process(7, item);
        fbs.process(7, item); // duplicates are absorbed
        frs.process(7, item);
        frs.process(7, item);
    }
    let fbs_est = fbs.estimate(7);
    let frs_est = frs.estimate(7);
    assert!(
        (fbs_est / 10_000.0 - 1.0).abs() < 0.05,
        "FreeBS estimate {fbs_est} not within 5% of 10000"
    );
    assert!(
        (frs_est / 10_000.0 - 1.0).abs() < 0.05,
        "FreeRS estimate {frs_est} not within 5% of 10000"
    );
    // O(1) anytime reads: unseen users are exactly zero, totals match the
    // single tracked user.
    assert_eq!(fbs.estimate(8), 0.0);
    assert_eq!(frs.estimate(8), 0.0);
}

/// The `examples/quickstart.rs` path end-to-end: synthetic stream, exact
/// oracle, aggregate accuracy. Keeps the example honest without depending
/// on its stdout format.
#[test]
fn quickstart_example_path_reports_sane_aggregates() {
    let mut estimator = FreeBS::new(1 << 20, 42);
    let stream = SynthConfig::tiny(7).generate();
    let mut truth = GroundTruth::new();
    for edge in stream.edges() {
        estimator.process(edge.user, edge.item);
        truth.observe(*edge);
    }
    let exact = truth.total_cardinality() as f64;
    assert!(
        exact > 1_000.0,
        "tiny profile should still stream >1k distinct pairs"
    );
    let total = estimator.total_estimate();
    assert!(
        (total / exact - 1.0).abs() < 0.05,
        "total estimate {total} not within 5% of exact {exact}"
    );
    // The per-user sum is the total (Horvitz–Thompson consistency), so the
    // quickstart's per-user report draws from the same mass.
    let mut sum = 0.0;
    estimator.for_each_estimate(&mut |_, e| sum += e);
    assert!((sum - total).abs() < 1e-6);
}
