//! End-to-end test of the serve daemon across the crate seams: spawn on
//! an ephemeral port, ingest a fixture through the writer pipeline, run
//! the whole query protocol over real TCP, shut down, and verify the
//! final checkpoint restores to **bit-identical** sketch state against an
//! offline run of the same configuration.
//!
//! One writer over one shard replays the stream in a deterministic
//! order, so the comparison is exact bytes, not a drift bound (the
//! multi-writer drift case lives in `crates/cli/tests/serve_stress.rs`).

use freesketch::snapshot::{load_with_fallback, save_snapshot, AnySketch};
use freesketch::{CardinalityEstimator, ShardedFreeBS};
use freesketch_cli::serve::{spawn, ServeConfig};
use graphstream::{CycleSource, Edge};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const MEMORY_BITS: usize = 1 << 16;
const SEED: u64 = 42;
const CHUNK: usize = 512;
const BATCH: usize = 128;

/// 7 users with distinct cardinalities; `user 0` has 1200 items.
fn fixture() -> Vec<Edge> {
    let mut edges = Vec::new();
    for round in 0..1200u64 {
        for u in 0..7u64 {
            if round < 1200 - u * 150 {
                edges.push(Edge::new(u, round));
            }
        }
    }
    edges
}

fn sketch() -> AnySketch {
    AnySketch::ShardedFreeBS(ShardedFreeBS::new(MEMORY_BITS, 1, SEED))
}

/// The exact ingest order the single daemon writer applies: chunk off the
/// source, then `ingest_batch` in `BATCH`-sized blocks.
fn offline_run(edges: &[Edge]) -> AnySketch {
    let sketch = sketch();
    {
        let est = sketch.as_concurrent().expect("sharded kind");
        for chunk in edges.chunks(CHUNK) {
            let pairs: Vec<(u64, u64)> = chunk.iter().map(|e| e.pair()).collect();
            for block in pairs.chunks(BATCH) {
                est.ingest_batch(block);
            }
        }
    }
    sketch
}

fn snapshot_bytes(sketch: &AnySketch, edges: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    save_snapshot(&mut bytes, sketch, edges).expect("serialize");
    bytes
}

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("freesketch-e2e-{}-{tag}", std::process::id()));
    p
}

#[test]
fn serve_round_trip_restores_bit_identical_state() {
    let edges = fixture();
    let total = edges.len() as u64;
    let offline = offline_run(&edges);

    let snap = temp_path("final.fsnp");
    std::fs::remove_file(&snap).ok();
    let handle = spawn(
        sketch(),
        Box::new(CycleSource::new(edges, 1)),
        ServeConfig {
            writers: 1,
            chunk: CHUNK,
            batch: BATCH,
            checkpoint: Some(snap.clone()),
            checkpoint_every: 1_000_000,
            ..ServeConfig::default()
        },
    )
    .expect("spawn on an ephemeral port");
    let addr = handle.addr();
    assert_eq!(addr.ip().to_string(), "127.0.0.1");
    assert_ne!(addr.port(), 0, "ephemeral port resolved");

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut request = |line: &str| -> String {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    };

    // Wait until the writer drains the fixture.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = request("STATS");
        assert!(stats.starts_with("OK "), "{stats}");
        if stats.contains(&format!("edges={total} ")) {
            assert!(stats.contains("kind=sharded-freebs"), "{stats}");
            break;
        }
        assert!(Instant::now() < deadline, "ingest never finished: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // ESTIMATE agrees exactly with the offline run (same order, 1 shard).
    for u in 0..7u64 {
        let reply = request(&format!("ESTIMATE #{u:x}"));
        let est: f64 = reply
            .strip_prefix("OK ")
            .expect("OK reply")
            .parse()
            .expect("float");
        let want = offline.estimate(u);
        assert!(
            (est - want).abs() < 0.0005,
            "user {u}: served {est} vs offline {want}"
        );
    }

    // TOPK returns the heaviest users in offline order.
    let topk = request("TOPK 3");
    let ids: Vec<&str> = topk.split_whitespace().skip(2).collect();
    assert_eq!(ids.len(), 3, "{topk}");
    assert!(ids[0].starts_with("#0000000000000000:"), "{topk}");
    assert!(ids[1].starts_with("#0000000000000001:"), "{topk}");

    // CONFIDENCE brackets the estimate.
    let conf = request("CONFIDENCE #0 95");
    let nums: Vec<f64> = conf
        .split_whitespace()
        .skip(1)
        .take(3)
        .map(|t| t.parse().expect("float"))
        .collect();
    assert_eq!(nums.len(), 3, "{conf}");
    assert!(nums[1] <= nums[0] && nums[0] <= nums[2], "{conf}");

    // Malformed input inside a healthy session: typed error, session lives.
    assert!(request("TOPK nope").starts_with("ERR bad-arg"));
    assert!(request("STATS").starts_with("OK "));

    // SNAPSHOT <path> quiesces and writes the same state the offline run
    // holds — bit-identical container bytes at the same edge offset.
    let live_snap = temp_path("live.fsnp");
    std::fs::remove_file(&live_snap).ok();
    let reply = request(&format!("SNAPSHOT {}", live_snap.display()));
    assert!(reply.starts_with("OK snapshot"), "{reply}");
    let live_bytes = std::fs::read(&live_snap).expect("snapshot written");
    assert_eq!(
        live_bytes,
        snapshot_bytes(&offline, total),
        "live SNAPSHOT bytes differ from the offline state"
    );

    assert!(request("SHUTDOWN").starts_with("OK draining"));
    let report = handle.join().expect("drained");
    assert_eq!(report.edges, total);
    assert!(report.checkpointed);
    assert!(!report.writer_panicked);
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // The final checkpoint restores to bit-identical store state: the
    // re-serialized restored sketch equals the offline serialization.
    let (restored, edges_recorded, used_fallback) = load_with_fallback(&snap)
        .expect("checkpoint readable")
        .expect("checkpoint present");
    assert!(!used_fallback);
    assert_eq!(edges_recorded, total);
    assert_eq!(
        snapshot_bytes(&restored, total),
        snapshot_bytes(&offline, total),
        "restored state differs from the offline run"
    );

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(format!("{}.prev", snap.display())).ok();
    std::fs::remove_file(&live_snap).ok();
}
