//! Checkpoint/restore integration: serialize estimators mid-stream,
//! restore, continue — the estimates must be indistinguishable from an
//! uninterrupted run. This is the operational feature a monitoring daemon
//! needs for restarts.

use freesketch::{CardinalityEstimator, Cse, FreeBS, FreeRS, VHll};
use graphstream::SynthConfig;

fn round_trip<T: serde::Serialize + serde::de::DeserializeOwned>(v: &T) -> T {
    let bytes = serde_json::to_vec(v).expect("serialize");
    serde_json::from_slice(&bytes).expect("deserialize")
}

#[test]
fn freebs_checkpoint_restore_continue() {
    let stream = SynthConfig::tiny(61).generate();
    let (first, second) = stream.edges().split_at(stream.len() / 2);

    let mut uninterrupted = FreeBS::new(1 << 16, 12);
    let mut before = FreeBS::new(1 << 16, 12);
    for e in first {
        uninterrupted.process(e.user, e.item);
        before.process(e.user, e.item);
    }
    let mut restored: FreeBS = round_trip(&before);
    for e in second {
        uninterrupted.process(e.user, e.item);
        restored.process(e.user, e.item);
    }
    assert_eq!(uninterrupted.q(), restored.q());
    let mut checked = 0;
    uninterrupted.for_each_estimate(&mut |u, e| {
        assert_eq!(e, restored.estimate(u), "user {u}");
        checked += 1;
    });
    assert!(checked > 100);
}

#[test]
fn freers_checkpoint_restore_continue() {
    let stream = SynthConfig::tiny(62).generate();
    let (first, second) = stream.edges().split_at(stream.len() / 3);

    let mut uninterrupted = FreeRS::new(1 << 13, 13);
    let mut before = FreeRS::new(1 << 13, 13);
    for e in first {
        uninterrupted.process(e.user, e.item);
        before.process(e.user, e.item);
    }
    let mut restored: FreeRS = round_trip(&before);
    for e in second {
        uninterrupted.process(e.user, e.item);
        restored.process(e.user, e.item);
    }
    assert_eq!(uninterrupted.q(), restored.q());
    assert_eq!(uninterrupted.total_estimate(), restored.total_estimate());
}

#[test]
fn virtual_sketch_methods_round_trip() {
    let stream = SynthConfig::tiny(63).generate();
    let mut cse = Cse::new(1 << 15, 256, 14);
    let mut vhll = VHll::new(1 << 12, 256, 14);
    for e in stream.edges().iter().take(20_000) {
        cse.process(e.user, e.item);
        vhll.process(e.user, e.item);
    }
    let cse2: Cse = round_trip(&cse);
    let vhll2: VHll = round_trip(&vhll);
    for u in 0..50u64 {
        assert_eq!(cse.estimate(u), cse2.estimate(u));
        assert_eq!(cse.estimate_fresh(u), cse2.estimate_fresh(u));
        assert_eq!(vhll.estimate(u), vhll2.estimate(u));
        assert_eq!(vhll.estimate_fresh(u), vhll2.estimate_fresh(u));
    }
}

#[test]
fn sketches_round_trip_too() {
    use cardsketch::{DistinctCounter, HyperLogLog, HyperLogLogPP, LinearCounting};
    let mut lpc = LinearCounting::new(2048, 1).expect("geometry");
    let mut hll = HyperLogLog::new(128, 1).expect("geometry");
    let mut pp = HyperLogLogPP::new(8, 1).expect("precision");
    for i in 0..5000u64 {
        lpc.insert(i);
        hll.insert(i);
        pp.insert(i);
    }
    let lpc2: LinearCounting = round_trip(&lpc);
    let hll2: HyperLogLog = round_trip(&hll);
    let pp2: HyperLogLogPP = round_trip(&pp);
    assert_eq!(lpc.estimate(), lpc2.estimate());
    assert_eq!(hll.estimate(), hll2.estimate());
    assert_eq!(pp.estimate(), pp2.estimate());
}
