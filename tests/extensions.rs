//! Integration tests for the beyond-the-paper extensions, on realistic
//! synthetic workloads.

use freesketch::{CardinalityEstimator, ConfidenceTracking, FreeBS, FreeRS, JointLpc, Windowed};
use graphstream::{GroundTruth, SynthConfig};

#[test]
fn windowed_tracks_recent_traffic_on_synthetic_stream() {
    // Split the stream in two halves with disjoint user populations by
    // remapping ids; users from the first half must expire.
    let stream = SynthConfig::tiny(71).generate();
    let half = stream.len() / 2;
    let slice = (half / 2).max(1) as u64;
    let mut w = Windowed::new(2, slice, |i| FreeBS::new(1 << 16, 500 + i));
    for e in &stream.edges()[..half] {
        w.process(e.user, e.item);
    }
    // First-half users visible now.
    let seen_user = stream.edges()[0].user;
    assert!(w.estimate(seen_user) >= 0.0);
    for e in &stream.edges()[half..] {
        w.process(e.user + 1_000_000, e.item); // disjoint id space
    }
    // Everything from the first half has rotated out.
    let mut residue = 0.0;
    for e in &stream.edges()[..half] {
        residue += w.estimate(e.user);
    }
    assert_eq!(residue, 0.0, "first-half users must have expired");
}

#[test]
fn confidence_intervals_cover_on_synthetic_stream() {
    // One pass over a heavy-tailed stream; check CI coverage across the
    // population of users with cardinality >= 20 (normal approximation is
    // poor below that).
    let stream = SynthConfig {
        users: 3_000,
        max_cardinality: 800,
        mean_cardinality: 12.0,
        duplication: 1.3,
        seed: 73,
    }
    .generate();
    let mut truth = GroundTruth::new();
    let mut est = ConfidenceTracking::new(FreeRS::new(1 << 13, 7));
    for e in stream.edges() {
        truth.observe(*e);
        est.process(e.user, e.item);
    }
    let mut covered = 0u32;
    let mut total = 0u32;
    for (user, actual) in truth.iter() {
        if actual < 20 {
            continue;
        }
        let ci = est.estimate_with_ci(user, 2.58); // 99%
        total += 1;
        if (ci.lower..=ci.upper).contains(&(actual as f64)) {
            covered += 1;
        }
    }
    assert!(total > 100, "need a meaningful population, got {total}");
    let coverage = f64::from(covered) / f64::from(total);
    assert!(
        coverage > 0.90,
        "99% CIs covered only {:.0}% of {total} users",
        coverage * 100.0
    );
}

#[test]
fn bit_sharing_generations_improve_in_order() {
    // JointLPC (2005) -> CSE (2009) -> FreeBS (2019): mean squared relative
    // error strictly improves on the same stream and budget.
    let stream = SynthConfig {
        users: 4_000,
        max_cardinality: 300,
        mean_cardinality: 10.0,
        duplication: 1.2,
        seed: 79,
    }
    .generate();
    let mut truth = GroundTruth::new();
    for e in stream.edges() {
        truth.observe(*e);
    }
    let m_bits = 1 << 17;

    let mse = |est: &dyn CardinalityEstimator| {
        let mut sq = 0.0;
        let mut k = 0u32;
        for (user, actual) in truth.iter() {
            if actual == 0 {
                continue;
            }
            let rel = (est.estimate(user) - actual as f64) / actual as f64;
            sq += rel * rel;
            k += 1;
        }
        sq / f64::from(k)
    };

    let mut joint = JointLpc::new(m_bits, 2048, 2, 5);
    let mut cse = freesketch::Cse::new(m_bits, 512, 5);
    let mut fbs = FreeBS::new(m_bits, 5);
    for e in stream.edges() {
        joint.process(e.user, e.item);
        cse.process(e.user, e.item);
        fbs.process(e.user, e.item);
    }
    let (mj, mc, mf) = (mse(&joint), mse(&cse), mse(&fbs));
    assert!(mf < mc, "FreeBS MSE {mf} !< CSE {mc}");
    assert!(mc < mj, "CSE MSE {mc} !< JointLPC {mj}");
}

#[test]
fn confidence_wrapper_matches_inner_estimates_exactly() {
    let stream = SynthConfig::tiny(83).generate();
    let mut plain = FreeBS::new(1 << 15, 9);
    let mut wrapped = ConfidenceTracking::new(FreeBS::new(1 << 15, 9));
    for e in stream.edges() {
        plain.process(e.user, e.item);
        wrapped.process(e.user, e.item);
    }
    let mut checked = 0;
    plain.for_each_estimate(&mut |u, e| {
        assert_eq!(e, wrapped.estimate(u));
        checked += 1;
    });
    assert!(checked > 500);
}
