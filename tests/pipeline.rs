//! End-to-end integration: synthetic dataset → all six estimators →
//! evaluation metrics, asserting the paper's headline qualitative results
//! on a small profile.

use freesketch::{CardinalityEstimator, Cse, FreeBS, FreeRS, PerUserHllpp, PerUserLpc, VHll};
use graphstream::{GroundTruth, PROFILES};
use metrics::RseBins;

struct Run {
    name: &'static str,
    mean_rse: f64,
}

fn run_all(profile_idx: usize, extra_scale: u64) -> (Vec<Run>, GroundTruth) {
    let profile = &PROFILES[profile_idx];
    let scale = profile.default_scale * extra_scale;
    let stream = profile.scaled(scale).generate();
    let mut truth = GroundTruth::new();
    for e in stream.edges() {
        truth.observe(*e);
    }
    let m_bits = profile.scaled_memory_bits(scale);
    let users = stream.config().users;
    let m = 1024.min(m_bits / 8);

    let methods: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(FreeBS::new(m_bits, 5)),
        Box::new(FreeRS::new(m_bits / 5, 5)),
        Box::new(Cse::new(m_bits, m, 5)),
        Box::new(VHll::new(m_bits / 5, m, 5)),
        Box::new(PerUserLpc::new((m_bits / users).max(8), 5)),
        Box::new(PerUserHllpp::new(4, 5)),
    ];
    let mut runs = Vec::new();
    for mut method in methods {
        for e in stream.edges() {
            method.process(e.user, e.item);
        }
        let mut bins = RseBins::new(2);
        for (user, actual) in truth.iter() {
            bins.record(actual, method.estimate(user));
        }
        runs.push(Run {
            name: match method.name() {
                "FreeBS" => "FreeBS",
                "FreeRS" => "FreeRS",
                "CSE" => "CSE",
                "vHLL" => "vHLL",
                "LPC" => "LPC",
                _ => "HLL++",
            },
            mean_rse: bins.mean_rse(),
        });
    }
    (runs, truth)
}

fn rse_of(runs: &[Run], name: &str) -> f64 {
    runs.iter()
        .find(|r| r.name == name)
        .expect("method present")
        .mean_rse
}

#[test]
fn paper_headline_freebs_beats_cse_and_vhll() {
    // Fig. 5's central claim at small scale: parameter-free methods win the
    // overall RSE comparison under equal memory.
    let (runs, _) = run_all(5 /* livejournal */, 20);
    let fbs = rse_of(&runs, "FreeBS");
    let frs = rse_of(&runs, "FreeRS");
    let cse = rse_of(&runs, "CSE");
    let vhll = rse_of(&runs, "vHLL");
    assert!(fbs < cse, "FreeBS {fbs} !< CSE {cse}");
    assert!(fbs < vhll, "FreeBS {fbs} !< vHLL {vhll}");
    assert!(frs < cse, "FreeRS {frs} !< CSE {cse}");
    assert!(frs < vhll, "FreeRS {frs} !< vHLL {vhll}");
    // Bit sharing beats register sharing at the small-cardinality-dominated
    // workload (§IV-C / Fig. 5 discussion).
    assert!(fbs < frs, "FreeBS {fbs} !< FreeRS {frs}");
    // And CSE beats vHLL in mean RSE on small-card-dominated data.
    assert!(cse < vhll, "CSE {cse} !< vHLL {vhll}");
}

#[test]
fn estimators_agree_with_truth_in_aggregate() {
    let (runs, truth) = run_all(3 /* flickr */, 20);
    assert!(truth.total_cardinality() > 1000);
    for r in &runs {
        assert!(
            r.mean_rse.is_finite() && r.mean_rse >= 0.0,
            "{}: mean RSE {}",
            r.name,
            r.mean_rse
        );
    }
    // The parameter-free methods should land under 60% mean RSE even at
    // this aggressive down-scale.
    assert!(rse_of(&runs, "FreeBS") < 0.6);
    assert!(rse_of(&runs, "FreeRS") < 0.6);
}

#[test]
fn spreader_detection_end_to_end() {
    let profile = &PROFILES[0]; // sanjose
    let scale = profile.default_scale * 10;
    let stream = profile.scaled(scale).generate();
    let mut truth = GroundTruth::new();
    let m_bits = profile.scaled_memory_bits(scale);
    let mut fbs = FreeBS::new(m_bits, 77);
    for e in stream.edges() {
        truth.observe(*e);
        fbs.process(e.user, e.item);
    }
    let delta = 5e-4; // above the noise floor of the 10x-reduced stream
    let report = freesketch::detect_spreaders(&fbs, delta);
    let threshold = (delta * truth.total_cardinality() as f64).ceil().max(1.0) as u64;
    let actual = truth.spreaders(threshold);
    let outcome =
        metrics::DetectionOutcome::compare(&actual, &report.detected, truth.user_count() as u64);
    assert!(!actual.is_empty(), "workload should contain spreaders");
    assert!(outcome.fnr() < 0.25, "FNR {}", outcome.fnr());
    assert!(outcome.fpr() < 0.01, "FPR {}", outcome.fpr());
}

#[test]
fn anytime_totals_track_running_truth() {
    let profile = &PROFILES[1]; // chicago
    let scale = profile.default_scale * 40;
    let stream = profile.scaled(scale).generate();
    let m_bits = profile.scaled_memory_bits(scale);
    let mut fbs = FreeBS::new(m_bits, 3);
    let mut frs = FreeRS::new(m_bits / 5, 3);
    let mut truth = GroundTruth::new();
    for (i, e) in stream.edges().iter().enumerate() {
        truth.observe(*e);
        fbs.process(e.user, e.item);
        frs.process(e.user, e.item);
        if i % 5000 == 4999 {
            let n = truth.total_cardinality() as f64;
            assert!(
                (fbs.total_estimate() / n - 1.0).abs() < 0.05,
                "FreeBS total at {i}"
            );
            assert!(
                (frs.total_estimate() / n - 1.0).abs() < 0.10,
                "FreeRS total at {i}"
            );
        }
    }
}
