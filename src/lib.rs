//! # freesketch-suite
//!
//! Umbrella crate for the FreeBS/FreeRS reproduction workspace. It exists to
//! host the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`); the actual functionality lives in the member crates, all of
//! which are re-exported here for convenience:
//!
//! * [`hashkit`] — hashing substrate.
//! * [`bitpack`] — bit arrays and packed register arrays.
//! * [`cardsketch`] — single-stream sketches (LPC, FM, HLL, HLL++).
//! * [`graphstream`] — graph-stream substrate and synthetic workloads.
//! * [`freesketch`] — the paper's estimators (FreeBS, FreeRS) and the shared
//!   baselines (CSE, vHLL), plus super-spreader detection.
//! * [`metrics`] — evaluation metrics (RSE, CCDF, FNR/FPR) and reporting.

#![forbid(unsafe_code)]

pub use bitpack;
pub use cardsketch;
pub use freesketch;
pub use graphstream;
pub use hashkit;
pub use metrics;
