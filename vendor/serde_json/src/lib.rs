//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Renders the stand-in `serde::Value` tree to JSON text and parses it
//! back. Fidelity guarantees, which the checkpoint/restore tests rely on:
//!
//! * `u64`/`i64` are written as exact decimal integers and re-parsed
//!   exactly (no round-trip through `f64`);
//! * finite `f64` uses Rust's shortest round-trip formatting (`{:?}`), so
//!   `parse::<f64>()` recovers the identical bits;
//! * map "keys" never appear — the `serde` stand-in encodes maps as
//!   `[key, value]` pair sequences — so non-string keys are exact too.
//!
//! Non-finite floats serialize to `null` (as real serde_json does) and
//! therefore fail to deserialize back into an `f64` field; sketch state is
//! always finite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{de::DeserializeOwned, Serialize, Value};

pub use serde::Error;

/// Serializes `value` to a JSON string.
///
/// # Errors
/// Never fails for the value shapes the workspace produces; the `Result`
/// mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
///
/// # Errors
/// See [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
/// If the input is not valid JSON or does not match `T`'s shape.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing input at byte {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
/// See [`from_str`].
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest exact round-trip form and always
                // contains a `.` or exponent, keeping floats distinguishable
                // from integers in the parsed tree.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` in array, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` in object, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos-1.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::custom(format!("invalid float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::custom(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::custom(format!("invalid integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[test]
    fn exact_numeric_round_trips() {
        let xs: Vec<u64> = vec![0, 1, u64::MAX, 0xC0FFEE];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), xs);

        let fs: Vec<f64> = vec![0.0, -0.0, 1.0, 0.1 + 0.2, 1e300, 5e-324, -123.456];
        let json = to_string(&fs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        for (a, b) in fs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }

        let is: Vec<i64> = vec![0, -1, i64::MIN, i64::MAX];
        let json = to_string(&is).unwrap();
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), is);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode: ∞".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn structured_values_round_trip() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::U64(1), Value::Null, Value::Bool(true)]),
            ),
            ("b".into(), Value::F64(2.5)),
        ]);
        let json = to_string(&v).unwrap();
        let back = Value::deserialize_value(&from_str::<Value>(&json).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_tolerated() {
        let got: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(from_str::<i64>("-9223372036854775809").is_err());
    }

    #[test]
    fn negative_integers_parse_exactly() {
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        assert_eq!(from_str::<i64>("-1").unwrap(), -1);
    }

    // End-to-end check of every shape the serde_derive stub supports.
    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Named {
        id: u64,
        weight: f64,
        tags: Vec<String>,
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Wrapper(std::num::NonZeroU8);

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Marker;

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    enum Shape {
        Empty,
        Pair(u64, f64),
        Nested(Named),
    }

    #[test]
    fn derived_shapes_round_trip() {
        let named = Named {
            id: u64::MAX,
            weight: 0.1 + 0.2,
            tags: vec!["a".into(), "b\"quoted\"".into()],
        };
        let json = to_string(&named).unwrap();
        assert_eq!(from_str::<Named>(&json).unwrap(), named);

        let wrapper = Wrapper(std::num::NonZeroU8::new(7).unwrap());
        assert_eq!(
            from_str::<Wrapper>(&to_string(&wrapper).unwrap()).unwrap(),
            wrapper
        );

        assert_eq!(
            from_str::<Marker>(&to_string(&Marker).unwrap()).unwrap(),
            Marker
        );

        for shape in [
            Shape::Empty,
            Shape::Pair(3, -1.5),
            Shape::Nested(Named {
                id: 0,
                weight: -0.0,
                tags: vec![],
            }),
        ] {
            let json = to_string(&shape).unwrap();
            assert_eq!(from_str::<Shape>(&json).unwrap(), shape, "json: {json}");
        }
    }
}
