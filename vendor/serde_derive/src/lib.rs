//! Offline stand-in for the `serde_derive` crate (see `vendor/README.md`).
//!
//! Derives the stand-in `serde::Serialize` / `serde::Deserialize` traits
//! (which render to / rebuild from a `serde::Value` tree) for:
//!
//! * non-generic structs with named fields,
//! * non-generic tuple structs,
//! * non-generic enums with unit and tuple variants.
//!
//! The parser walks the raw `proc_macro::TokenStream` directly — `syn` and
//! `quote` are not available offline — which is enough because the derive
//! input grammar needed here is tiny. Unsupported shapes (generics, named
//! enum variant fields, unions) produce a `compile_error!` naming the
//! limitation rather than mis-compiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct: number of fields.
    TupleStruct(usize),
    /// Unit struct (`struct X;`) — constructed without parentheses.
    UnitStruct,
    /// Enum: `(variant name, tuple-field count)`; unit variants have 0.
    Enum(Vec<(String, usize)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, mode)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error tokens parse"),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            i += 1;
            tokens[i - 1].to_string()
        }
        other => {
            return Err(format!(
                "serde_derive stub: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => {
            return Err(format!(
                "serde_derive stub: expected type name, got {other:?}"
            ))
        }
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is not supported (add a manual impl)"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok((name, Shape::TupleStruct(count_top_level_fields(g.stream()))))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Ok((name, Shape::Enum(parse_variants(g.stream())?)))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
        other => Err(format!(
            "serde_derive stub: unsupported {kind} body: {other:?}"
        )),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected field name, got {other}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde_derive stub: expected `:` after `{name}`, got {other:?}"
                ))
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advances past one type, stopping after the next top-level `,` (or end).
/// Angle brackets nest (`HashMap<u64, Vec<u8>, S>`); parens/brackets arrive
/// pre-grouped so only `<`/`>` need explicit depth tracking.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            // The `>` of a `->` return arrow (fn-pointer types) must not
            // close a generic bracket; `-` and `>` arrive as a joint pair.
            TokenTree::Punct(p)
                if p.as_char() == '-'
                    && p.spacing() == proc_macro::Spacing::Joint
                    && matches!(
                        tokens.get(*i + 1),
                        Some(TokenTree::Punct(q)) if q.as_char() == '>'
                    ) =>
            {
                *i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0usize;
    let mut count = 0usize;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

/// `(name, tuple-field count)` for each enum variant.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected variant name, got {other}"
                ))
            }
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive stub: named fields on variant `{name}` are not supported"
                ));
            }
            _ => 0,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "serde_derive stub: expected `,` after variant, got {other:?}"
                ))
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::NamedStruct(fields), Mode::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Serialize for {name} {{
                     fn serialize_value(&self) -> ::serde::Value {{
                         ::serde::Value::Map(::std::vec![{entries}])
                     }}
                 }}"
            )
        }
        (Shape::NamedStruct(fields), Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         ::serde::map_field(__map, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Deserialize for {name} {{
                     fn deserialize_value(__v: &::serde::Value)
                         -> ::std::result::Result<Self, ::serde::Error> {{
                         let __map = ::serde::Value::as_map(__v).ok_or_else(
                             || ::serde::Error::custom(concat!(\"expected map for struct \", {name:?})))?;
                         ::std::result::Result::Ok({name} {{ {inits} }})
                     }}
                 }}"
            )
        }
        (Shape::TupleStruct(n), Mode::Serialize) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i}),"))
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Serialize for {name} {{
                     fn serialize_value(&self) -> ::serde::Value {{
                         ::serde::Value::Seq(::std::vec![{items}])
                     }}
                 }}"
            )
        }
        (Shape::TupleStruct(n), Mode::Deserialize) => {
            let items: String = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize_value(::serde::seq_field(__seq, {i})?)?,"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Deserialize for {name} {{
                     fn deserialize_value(__v: &::serde::Value)
                         -> ::std::result::Result<Self, ::serde::Error> {{
                         let __seq = ::serde::Value::as_seq(__v).ok_or_else(
                             || ::serde::Error::custom(concat!(\"expected sequence for \", {name:?})))?;
                         ::std::result::Result::Ok({name}({items}))
                     }}
                 }}"
            )
        }
        (Shape::UnitStruct, Mode::Serialize) => {
            format!(
                "#[automatically_derived]
                 impl ::serde::Serialize for {name} {{
                     fn serialize_value(&self) -> ::serde::Value {{
                         ::serde::Value::Seq(::std::vec::Vec::new())
                     }}
                 }}"
            )
        }
        (Shape::UnitStruct, Mode::Deserialize) => {
            format!(
                "#[automatically_derived]
                 impl ::serde::Deserialize for {name} {{
                     fn deserialize_value(__v: &::serde::Value)
                         -> ::std::result::Result<Self, ::serde::Error> {{
                         ::serde::Value::as_seq(__v).ok_or_else(
                             || ::serde::Error::custom(concat!(\"expected sequence for \", {name:?})))?;
                         ::std::result::Result::Ok({name})
                     }}
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                        )
                    } else {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let bind_list = binds.join(", ");
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({bind_list}) => ::serde::Value::Map(::std::vec![
                                 (::std::string::String::from(\"variant\"),
                                  ::serde::Value::Str(::std::string::String::from({v:?}))),
                                 (::std::string::String::from(\"fields\"),
                                  ::serde::Value::Seq(::std::vec![{items}])),
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Serialize for {name} {{
                     fn serialize_value(&self) -> ::serde::Value {{
                         match self {{ {arms} }}
                     }}
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Deserialize) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tuple_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    let items: String = (0..*arity)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::deserialize_value(\
                                 ::serde::seq_field(__fields, {i})?)?,"
                            )
                        })
                        .collect();
                    format!("{v:?} => ::std::result::Result::Ok({name}::{v}({items})),")
                })
                .collect();
            format!(
                "#[automatically_derived]
                 impl ::serde::Deserialize for {name} {{
                     fn deserialize_value(__v: &::serde::Value)
                         -> ::std::result::Result<Self, ::serde::Error> {{
                         if let ::std::option::Option::Some(__s) = ::serde::Value::as_str(__v) {{
                             return match __s {{
                                 {unit_arms}
                                 __other => ::std::result::Result::Err(::serde::Error::custom(
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),
                             }};
                         }}
                         let __map = ::serde::Value::as_map(__v).ok_or_else(
                             || ::serde::Error::custom(concat!(\"expected variant map for \", {name:?})))?;
                         let __variant = ::serde::Value::as_str(::serde::map_field(__map, \"variant\")?)
                             .ok_or_else(|| ::serde::Error::custom(\"variant name must be a string\"))?;
                         let __fields = ::serde::Value::as_seq(::serde::map_field(__map, \"fields\")?)
                             .ok_or_else(|| ::serde::Error::custom(\"variant fields must be a sequence\"))?;
                         match __variant {{
                             {tuple_arms}
                             __other => ::std::result::Result::Err(::serde::Error::custom(
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),
                         }}
                     }}
                 }}"
            )
        }
    }
}
