//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use: [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], `sample_size`,
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! When actually *run* (`cargo bench`), each benchmark executes a small
//! fixed number of timed iterations and prints the mean wall-clock time per
//! iteration (plus derived throughput, when declared) — a smoke run, not a
//! statistically rigorous measurement. `cargo bench --no-run` compiles
//! everything, which is what CI verifies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations timed per benchmark in this stub's smoke run.
const SMOKE_ITERS: u32 = 3;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string literals and explicit ids.
pub trait IntoBenchmarkId {
    /// Converts to the id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..SMOKE_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(SMOKE_ITERS);
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(None, &id.into_benchmark_id(), None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the smoke run ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the smoke run ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let per_iter_s = bencher.mean_ns / 1e9;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / per_iter_s),
        Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / per_iter_s),
    });
    println!(
        "bench {full:<48} {:>14.0} ns/iter{}",
        bencher.mean_ns,
        rate.unwrap_or_default()
    );
}

/// Binds benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Elements(10)).sample_size(10);
            g.bench_function("plain", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("ungrouped", |b| b.iter(|| 1 + 1));
        assert!(ran >= 1, "routine must have executed");
    }
}
