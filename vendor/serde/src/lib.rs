//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde is a zero-copy framework generic over data formats; this
//! stand-in collapses that to the one thing the workspace needs: lossless
//! structural round-trips through `serde_json`. [`Serialize`] renders a
//! value into an owned [`Value`] tree, [`Deserialize`] rebuilds it, and the
//! derive macros (re-exported from `serde_derive`) implement both for
//! structs and enums. Numeric fidelity matters here — sketches carry `u64`
//! hash state and `f64` estimator state — so integers and floats are kept
//! in distinct [`Value`] arms and never coerced through each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Make `#[derive(serde::Serialize, serde::Deserialize)]` resolve: the derive
// macro names must be importable from the crate root, like real serde with
// the `derive` feature. The trait and macro share a name across namespaces,
// exactly as upstream.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// The self-describing tree every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A key-ordered record (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a struct field in a serialized map.
///
/// # Errors
/// If `key` is absent.
pub fn map_field<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Looks up a sequence element by index (tuple-struct fields).
///
/// # Errors
/// If `idx` is out of bounds.
pub fn seq_field(seq: &[Value], idx: usize) -> Result<&Value, Error> {
    seq.get(idx)
        .ok_or_else(|| Error::custom(format!("missing tuple field {idx}")))
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn serialize_value(&self) -> Value;
}

/// A value rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value.
    ///
    /// # Errors
    /// If `v` has the wrong shape.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: [`DeserializeOwned`], as bounds in downstream
/// code spell it.
pub mod de {
    /// Deserializable without borrowing from the input — every
    /// [`Deserialize`](crate::Deserialize) type here, since the stand-in is
    /// fully owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error::custom(format!("{x} out of i64 range")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}
impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        i64::deserialize_value(v).map(|x| x as isize)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                #[allow(clippy::cast_possible_truncation)]
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_nonzero {
    ($($nz:ty => $prim:ty),*) => {$(
        impl Serialize for $nz {
            fn serialize_value(&self) -> Value {
                self.get().serialize_value()
            }
        }
        impl Deserialize for $nz {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = <$prim>::deserialize_value(v)?;
                <$nz>::new(raw).ok_or_else(|| Error::custom("expected non-zero integer"))
            }
        }
    )*};
}
impl_nonzero!(
    std::num::NonZeroU8 => u8,
    std::num::NonZeroU16 => u16,
    std::num::NonZeroU32 => u32,
    std::num::NonZeroU64 => u64,
    std::num::NonZeroUsize => usize
);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize_value()),+])
            }
        }
        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($n::deserialize_value(seq_field(s, $i)?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// Maps serialize as sequences of `[key, value]` pairs so non-string keys
// (u64 user ids, here) survive JSON without lossy stringification.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected map entry sequence"))?;
        let mut out = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for e in entries {
            let pair = e
                .as_seq()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            out.insert(
                K::deserialize_value(seq_field(pair, 0)?)?,
                V::deserialize_value(seq_field(pair, 1)?)?,
            );
        }
        Ok(out)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected map entry sequence"))?;
        let mut out = BTreeMap::new();
        for e in entries {
            let pair = e
                .as_seq()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            out.insert(
                K::deserialize_value(seq_field(pair, 0)?)?,
                V::deserialize_value(seq_field(pair, 1)?)?,
            );
        }
        Ok(out)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?;
        let mut out = HashSet::with_capacity_and_hasher(items.len(), S::default());
        for i in items {
            out.insert(T::deserialize_value(i)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for BinaryHeap<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BinaryHeap<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(
            i32::deserialize_value(&(-7i32).serialize_value()).unwrap(),
            -7
        );
        let x = 0.1f64 + 0.2;
        assert_eq!(f64::deserialize_value(&x.serialize_value()).unwrap(), x);
        assert!(u8::deserialize_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn container_round_trips() {
        let m: HashMap<u64, f64> = [(3, 1.5), (u64::MAX, -2.25)].into_iter().collect();
        let m2: HashMap<u64, f64> = Deserialize::deserialize_value(&m.serialize_value()).unwrap();
        assert_eq!(m, m2);

        let heap: BinaryHeap<u64> = [5u64, 1, 9].into_iter().collect();
        let h2: BinaryHeap<u64> = Deserialize::deserialize_value(&heap.serialize_value()).unwrap();
        let mut a: Vec<u64> = heap.into_sorted_vec();
        let mut b: Vec<u64> = h2.into_sorted_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let nz = std::num::NonZeroU8::new(64).unwrap();
        assert_eq!(
            std::num::NonZeroU8::deserialize_value(&nz.serialize_value()).unwrap(),
            nz
        );
        assert!(std::num::NonZeroU8::deserialize_value(&Value::U64(0)).is_err());
    }
}
