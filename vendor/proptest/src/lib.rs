//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameter forms and an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`arbitrary::any`] for the primitive integer/float/bool types;
//! * integer and float range strategies (`0u64..32`, `1u8..=8`, …), tuple
//!   strategies, and `prop::collection::{vec, hash_set}`.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **fully deterministic** (seeded per test name, so reruns
//! never flake) and failing cases are **not shrunk** (the failing input is
//! reported as-is via the assertion panic message).

#![forbid(unsafe_code)]

/// Deterministic pseudo-random generation for test cases.
pub mod test_runner {
    /// SplitMix64-based RNG; seeded from the test name and case index so
    /// every run of every test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for case `case` of the test named `name`.
        #[must_use]
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, then decorrelate with the case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            };
            // A few warm-up steps so near-identical seeds diverge.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// Next uniform 64-bit value (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`] trait and implementations for ranges and tuples.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    #[allow(clippy::cast_possible_truncation)]
                    let v = self.start as f64
                        + rng.next_unit_f64() * (self.end as f64 - self.start as f64);
                    v as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    assert!(lo <= hi, "empty range strategy");
                    // The closed upper bound is hit with probability ~0;
                    // close enough for an inclusive float range.
                    #[allow(clippy::cast_possible_truncation)]
                    let v = lo + rng.next_unit_f64() * (hi - lo);
                    v as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }
}

/// `any::<T>()` — the full-domain strategy for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag = rng.next_unit_f64() * 2f64.powi((rng.next_below(120) as i32) - 60);
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }
}

/// Collection strategies under the conventional `prop::` path.
pub mod prop {
    /// `vec` and `hash_set` collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A size specification: a fixed size or a half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
            }
        }

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` with a target size in `size`.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates hash sets of values from `element`. If the element
        /// domain is too small to reach the drawn size, the set saturates at
        /// whatever was reachable within the retry budget (like proptest's
        /// rejection cap, but non-fatal).
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut out = std::collections::HashSet::new();
                let mut attempts = 0usize;
                let budget = 100 + target * 100;
                while out.len() < target && attempts < budget {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Asserts a condition inside a property; panics with the formatted message
/// on failure (no shrinking — the generated inputs are in the panic source).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines deterministic property tests.
///
/// The `#[test]` attribute passes through, so properties defined at module
/// scope register as ordinary tests (in the doctest below it is omitted so
/// the property can be invoked directly):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0u32..1000, b: u32) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind! { __rng, $($params)* }
                { $body }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $strat:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $p:pat in $strat:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $n:ident : $ty:ty) => {
        let $n = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
    };
    ($rng:ident, $n:ident : $ty:ty, $($rest:tt)*) => {
        let $n = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u8..=9, b in -5i32..5, c in 0.25f64..0.75, d: u64) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
            let _ = d;
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec((0u64..4, any::<u16>()), 2..10),
                                     s in prop::collection::hash_set(0u64..100, 0..20)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(s.len() < 20);
            for (x, _) in &v {
                prop_assert!(*x < 4);
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let gen = |case| {
            let mut rng = TestRng::deterministic("same_name", case);
            prop::collection::vec(0u64..1000, 5..10).generate(&mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8), "different cases should differ");
    }
}
