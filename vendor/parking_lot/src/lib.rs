//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Implements the two types this workspace uses: a **non-poisoning**
//! [`Mutex`] and a **non-poisoning** [`RwLock`], whose `lock()` / `read()`
//! / `write()` return guards directly instead of a `Result`, matching
//! parking_lot's signatures. Backed by the `std::sync` primitives; a
//! poisoned std lock (a panic while held) is transparently recovered,
//! which is exactly parking_lot's behaviour (it has no poisoning at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected data.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if a
    /// previous holder panicked, the data is handed over as-is.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking (requires
    /// exclusive access to the mutex itself).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected data.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never
    /// poisons: if a previous holder panicked, the data is handed over
    /// as-is.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking (requires
    /// exclusive access to the lock itself).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(41);
        assert_eq!(*l.read(), 41);
        *l.write() += 1;
        assert_eq!(*l.read(), 42);
        let mut l = l;
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 43);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = RwLock::new(7u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        assert_eq!(*l.read(), 7);
                    }
                });
            }
        });
    }

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
