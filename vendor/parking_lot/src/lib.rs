//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Implements the one type this workspace uses: a **non-poisoning**
//! [`Mutex`] whose `lock()` returns the guard directly instead of a
//! `Result`, matching parking_lot's signature. Backed by `std::sync::Mutex`;
//! a poisoned std lock (a panic while held) is transparently recovered,
//! which is exactly parking_lot's behaviour (it has no poisoning at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected data.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if a
    /// previous holder panicked, the data is handed over as-is.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking (requires
    /// exclusive access to the mutex itself).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
