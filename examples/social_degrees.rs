//! Social-graph scenario: track user degrees in an Orkut-like edge stream
//! and compare every estimator the paper evaluates, under one memory
//! budget.
//!
//! ```text
//! cargo run --release --example social_degrees
//! ```

use freesketch::{CardinalityEstimator, Cse, FreeBS, FreeRS, PerUserHllpp, PerUserLpc, VHll};
use graphstream::{profiles, GroundTruth};
use metrics::RseBins;

fn main() {
    let profile = profiles::by_name("orkut").expect("profile exists");
    let scale = profile.default_scale * 10;
    let stream = profile.scaled(scale).generate();
    let mut truth = GroundTruth::new();
    for e in stream.edges() {
        truth.observe(*e);
    }

    let m_bits = profile.scaled_memory_bits(scale);
    let users = stream.config().users;
    let m = 1024;
    println!(
        "orkut-like stream: {} users, {} distinct edges, budget {} per method\n",
        truth.user_count(),
        truth.total_cardinality(),
        format_args!("{:.1} Mbit", m_bits as f64 / 1e6),
    );

    let methods: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(FreeBS::new(m_bits, 2)),
        Box::new(FreeRS::new(m_bits / 5, 2)),
        Box::new(Cse::new(m_bits, m, 2)),
        Box::new(VHll::new(m_bits / 5, m, 2)),
        Box::new(PerUserLpc::new((m_bits / users).max(8), 2)),
        Box::new(PerUserHllpp::new(4, 2)),
    ];

    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}",
        "method", "mean RSE", "total est", "sketch mem"
    );
    for mut method in methods {
        for e in stream.edges() {
            method.process(e.user, e.item);
        }
        let mut bins = RseBins::new(2);
        for (user, actual) in truth.iter() {
            bins.record(actual, method.estimate(user));
        }
        println!(
            "{:>8}  {:>12.4}  {:>12.0}  {:>10}",
            method.name(),
            bins.mean_rse(),
            method.total_estimate(),
            format!("{:.2} Mbit", method.memory_bits() as f64 / 1e6),
        );
    }
    println!("\n(FreeBS/FreeRS post the lowest RSE of the sharing methods; at this demo's");
    println!(" reduced scale each user also gets an oversized private LPC bitmap, so the");
    println!(" per-user baseline looks strong — run exp_fig5 for the paper-scale picture,");
    println!(" where private bitmaps saturate on heavy users and lose)");
}
