//! Quickstart: estimate every user's cardinality over time with FreeBS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use freesketch::{CardinalityEstimator, FreeBS};
use graphstream::{GroundTruth, SynthConfig};

fn main() {
    // 1. A shared bit array of 2^20 bits (128 KiB) tracks *all* users.
    let mut estimator = FreeBS::new(1 << 20, /*seed=*/ 42);

    // 2. Stream (user, item) pairs — duplicates welcome.
    let stream = SynthConfig::tiny(7).generate();
    let mut truth = GroundTruth::new(); // exact oracle, just for the demo
    for edge in stream.edges() {
        estimator.process(edge.user, edge.item);
        truth.observe(*edge);

        // 3. Estimates are available at ANY time, in O(1) — no end-of-window
        //    computation. Peek at user 0 occasionally.
        if truth.total_cardinality().is_multiple_of(10_000) {
            println!(
                "after {:>7} distinct pairs: user 0 ≈ {:>7.1} (exact {})",
                truth.total_cardinality(),
                estimator.estimate(0),
                truth.cardinality(0),
            );
        }
    }

    // 4. Final report for the five heaviest users.
    let mut users: Vec<(u64, u64)> = truth.iter().collect();
    users.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nheaviest users (estimate vs exact):");
    for &(user, exact) in users.iter().take(5) {
        println!(
            "  user {user:>5}: {:>8.1} vs {exact:>6}  ({:+.1}%)",
            estimator.estimate(user),
            (estimator.estimate(user) / exact as f64 - 1.0) * 100.0
        );
    }
    println!(
        "\ntotal: {:.0} estimated vs {} exact, using {} of sketch memory",
        estimator.total_estimate(),
        truth.total_cardinality(),
        format_args!("{} KiB", estimator.memory_bits() / 8192),
    );
}
