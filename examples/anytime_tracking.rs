//! The anytime property in action: follow one user's estimate through the
//! stream and watch it track the exact cardinality in real time — the
//! capability CSE/vHLL lack (their counters are only fresh for the user
//! that just arrived, and a full refresh costs O(m) per user).
//!
//! Also demonstrates the concurrent extension: the same stream processed
//! from four threads into one shared `ConcurrentFreeBS` lands on the same
//! answers.
//!
//! ```text
//! cargo run --release --example anytime_tracking
//! ```

use freesketch::concurrent::ConcurrentFreeBS;
use freesketch::{CardinalityEstimator, FreeBS};
use std::sync::Arc;

fn main() {
    let m_bits = 1 << 20;
    let mut est = FreeBS::new(m_bits, 9);

    println!("one user ramping up among background noise:\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>7}",
        "time", "exact", "estimate", "error"
    );
    let mut exact = 0u64;
    for t in 0..200_000u64 {
        // The probe user adds a new item every 4th tick; three background
        // users churn alongside.
        if t % 4 == 0 {
            est.process(0, exact);
            exact += 1;
        }
        est.process(1 + t % 3, t.wrapping_mul(0x9E37_79B9));
        if t % 25_000 == 24_999 {
            let e = est.estimate(0);
            println!(
                "{:>10}  {:>10}  {:>10.1}  {:>6.2}%",
                t + 1,
                exact,
                e,
                (e / exact as f64 - 1.0) * 100.0
            );
        }
    }

    // Concurrent variant: four threads, one shared sketch, same semantics.
    println!("\nconcurrent: 4 threads × 25k items each into one shared array");
    let conc = Arc::new(ConcurrentFreeBS::new(m_bits, 9));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let conc = Arc::clone(&conc);
            s.spawn(move || {
                for d in 0..25_000u64 {
                    conc.process(100 + t, d);
                }
            });
        }
    });
    for t in 0..4u64 {
        println!(
            "  user {:>3}: {:>10.1} (exact 25000, {:+.2}%)",
            100 + t,
            conc.estimate(100 + t),
            (conc.estimate(100 + t) / 25_000.0 - 1.0) * 100.0
        );
    }
}
