//! Network-monitoring scenario: detect super spreaders *as the traffic
//! flows*, the §V-F case study and the paper's headline application.
//!
//! A router sees a CAIDA-like stream of (source host, destination) pairs.
//! Hosts contacting an outsized number of distinct destinations — port
//! scanners, worms, crawlers — must be flagged on the fly. We run FreeRS
//! under a small memory budget and compare its rolling detections against
//! the exact answer.
//!
//! ```text
//! cargo run --release --example super_spreaders
//! ```

use freesketch::{detect_spreaders, CardinalityEstimator, FreeRS};
use graphstream::{profiles, GroundTruth};
use metrics::DetectionOutcome;

fn main() {
    let profile = profiles::by_name("sanjose").expect("profile exists");
    let scale = profile.default_scale * 10; // keep the example snappy
    let stream = profile.scaled(scale).generate();

    // Memory budget scaled with the stream; the relative threshold Δ is
    // scale-invariant (threshold and cardinalities shrink together).
    let m_bits = profile.scaled_memory_bits(scale);
    let delta = 2e-4; // slightly above the paper's 5e-5: the 10x-reduced
                      // demo stream needs a threshold above the noise floor

    let mut estimator = FreeRS::new(m_bits / 5, 1);
    let mut truth = GroundTruth::new();

    println!(
        "monitoring {} edges with {} of registers, Δ = {delta:.1e}\n",
        stream.len(),
        bench_fmt(m_bits)
    );
    println!(
        "{:>8}  {:>10}  {:>9}  {:>8}  {:>8}",
        "minute", "threshold", "spreaders", "FNR", "FPR"
    );

    let slices = 10;
    let slice_len = stream.len().div_ceil(slices);
    for (minute, chunk) in stream.edges().chunks(slice_len).enumerate() {
        for e in chunk {
            estimator.process(e.user, e.item);
            truth.observe(*e);
        }
        let report = detect_spreaders(&estimator, delta);
        let exact_threshold = (delta * truth.total_cardinality() as f64).ceil().max(1.0) as u64;
        let actual = truth.spreaders(exact_threshold);
        let outcome =
            DetectionOutcome::compare(&actual, &report.detected, truth.user_count() as u64);
        println!(
            "{:>8}  {:>10.0}  {:>9}  {:>8.1e}  {:>8.1e}",
            minute + 1,
            report.threshold,
            actual.len(),
            outcome.fnr(),
            outcome.fpr(),
        );
    }
    println!("\n(the estimator never rescans the stream: every row is an O(users) pass");
    println!(" over counters that were maintained in O(1) per packet)");
}

fn bench_fmt(bits: usize) -> String {
    if bits >= 1_000_000 {
        format!("{:.1} Mbit", bits as f64 / 1e6)
    } else {
        format!("{:.0} kbit", bits as f64 / 1e3)
    }
}
