#!/usr/bin/env bash
# Tier-1 verification gate: everything CI runs, runnable locally.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> freesketch-analyzer (ordering-audit, unsafe-gate, lock-discipline, serde-sync, atomic-protocol, lock-order, hot-path-hygiene)"
# Hard gate: any finding (including stale allowlist entries) fails the build.
./target/release/freesketch-analyzer
# CLI contract: pass listing, single-pass selection, unknown pass = usage error.
./target/release/freesketch-analyzer --list-passes | grep -q '^hot-path-hygiene$' || {
  echo "--list-passes missing hot-path-hygiene"; exit 1;
}
./target/release/freesketch-analyzer --pass lock-order > /dev/null
if ./target/release/freesketch-analyzer --pass no-such-pass > /dev/null 2>&1; then
  echo "unknown --pass should be a usage error"; exit 1
fi

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cli smoke"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
printf 'alice a\nalice b\nalice b\nbob a\n' > "$tmp/edges.tsv"
# Drive the binary the release build just produced; `cargo run` without
# --release would recompile the whole workspace in the dev profile.
./target/release/freesketch --help > /dev/null
./target/release/freesketch estimate "$tmp/edges.tsv" --top 2 > /dev/null
# Batch and scalar ingest paths must agree through the CLI.
./target/release/freesketch estimate "$tmp/edges.tsv" --batch 0 > /dev/null
# Sharded parallel ingest drives the same report.
./target/release/freesketch estimate "$tmp/edges.tsv" --threads 2 > /dev/null

echo "==> convert -> estimate roundtrip smoke (TSV and fedge must be identical)"
./target/release/freesketch convert "$tmp/edges.tsv" "$tmp/edges.fedge" > /dev/null
./target/release/freesketch estimate "$tmp/edges.tsv"   --top 3 > "$tmp/est-tsv.txt"
./target/release/freesketch estimate "$tmp/edges.fedge" --top 3 > "$tmp/est-fedge.txt"
diff -u "$tmp/est-tsv.txt" "$tmp/est-fedge.txt" || {
  echo "fedge estimate differs from TSV estimate"; exit 1;
}

echo "==> streaming-estimate smoke (multi-chunk file, bounded reader buffer)"
./target/release/freesketch synth livejournal --scale 4000 --out "$tmp/synth.tsv" > /dev/null
./target/release/freesketch convert "$tmp/synth.tsv" "$tmp/synth.fedge" > /dev/null
# --chunk 1024 forces many reader chunks on both formats; the reports must
# still be identical (chunking never changes what was ingested).
./target/release/freesketch estimate "$tmp/synth.tsv"   --chunk 1024 > "$tmp/synth-tsv.txt"
./target/release/freesketch estimate "$tmp/synth.fedge" --chunk 1024 > "$tmp/synth-fedge.txt"
diff -u "$tmp/synth-tsv.txt" "$tmp/synth-fedge.txt" || {
  echo "multi-chunk fedge estimate differs from TSV estimate"; exit 1;
}
grep -q "edges processed" "$tmp/synth-tsv.txt" || {
  echo "streaming estimate produced no report"; exit 1;
}

echo "==> checkpoint / crash / restore / resume smoke (~1M-edge trace)"
./target/release/freesketch synth livejournal --out "$tmp/big.tsv" > /dev/null
./target/release/freesketch convert "$tmp/big.tsv" "$tmp/big.fedge" > /dev/null
edges=$(grep -vc '^#' "$tmp/big.tsv")
every=$(( edges / 5 + 1 ))
# Uninterrupted reference run.
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 > "$tmp/ref.txt"
# Inject a crash after the second checkpoint write: the run must fail with
# the typed fault-injection error, leaving the last good checkpoint behind.
if FREESKETCH_CRASH_AFTER_CHECKPOINTS=2 ./target/release/freesketch estimate "$tmp/big.fedge" \
     --top 5 --checkpoint "$tmp/state.fsnp" --checkpoint-every "$every" \
     > /dev/null 2> "$tmp/crash-err.txt"; then
  echo "injected crash did not fail the run"; exit 1
fi
grep -q "simulated crash" "$tmp/crash-err.txt" || {
  echo "crash error not typed:"; cat "$tmp/crash-err.txt"; exit 1;
}
test -s "$tmp/state.fsnp" || { echo "no checkpoint left behind after crash"; exit 1; }
# Restart the same command: it must restore the checkpoint, resume the
# trace at the recorded offset, and match the uninterrupted run exactly.
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 \
  --checkpoint "$tmp/state.fsnp" --checkpoint-every "$every" > "$tmp/resumed.txt"
grep -q "restored checkpoint" "$tmp/resumed.txt" || {
  echo "resumed run did not restore the checkpoint:"; cat "$tmp/resumed.txt"; exit 1;
}
tail -n +2 "$tmp/resumed.txt" | diff -u "$tmp/ref.txt" - || {
  echo "resumed estimate differs from uninterrupted run"; exit 1;
}

echo "==> snapshot merge smoke (split halves vs whole trace)"
half=$(( (edges + 1) / 2 ))
# No `grep | head` here: under pipefail, head closing the pipe early turns
# grep's SIGPIPE into a spurious gate failure. Split from a plain file.
grep -v '^#' "$tmp/big.tsv" > "$tmp/body.tsv"
head -n "$half" "$tmp/body.tsv" > "$tmp/half1.tsv"
tail -n +"$(( half + 1 ))" "$tmp/body.tsv" > "$tmp/half2.tsv"
./target/release/freesketch checkpoint "$tmp/half1.tsv" "$tmp/h1.fsnp" > /dev/null
./target/release/freesketch checkpoint "$tmp/half2.tsv" "$tmp/h2.fsnp" > /dev/null
./target/release/freesketch merge "$tmp/h1.fsnp" "$tmp/h2.fsnp" "$tmp/union.fsnp" > /dev/null
./target/release/freesketch restore "$tmp/union.fsnp" --top 5 > "$tmp/union.txt"
grep -q "$edges edges in freebs snapshot" "$tmp/union.txt" || {
  echo "merged snapshot lost edges:"; cat "$tmp/union.txt"; exit 1;
}

echo "==> fused-layout / warm-ahead smoke (~1M-edge stream, reports must be identical)"
# The fused layout is a physical rearrangement and the warm distance is
# load-only lookahead: both must leave the report byte-identical to the
# split-layout default run, single-engine and sharded alike.
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 --layout fused > "$tmp/fused.txt"
diff -u "$tmp/ref.txt" "$tmp/fused.txt" || {
  echo "--layout fused changed the report"; exit 1;
}
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 --warm-ahead 4 > "$tmp/warm.txt"
diff -u "$tmp/ref.txt" "$tmp/warm.txt" || {
  echo "--warm-ahead changed the report"; exit 1;
}
# Parallel ingest is not byte-deterministic (thread interleaving moves the
# per-shard q-freeze boundaries), so the sharded fused run is held to a
# tight tolerance on the total rather than a byte diff.
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 --threads 2 > "$tmp/split-mt.txt"
./target/release/freesketch estimate "$tmp/big.fedge" --top 5 --threads 2 \
  --layout fused --warm-ahead 2 > "$tmp/fused-mt.txt"
split_total=$(grep -o 'cardinality ≈ [0-9]*' "$tmp/split-mt.txt" | grep -o '[0-9]*$')
fused_total=$(grep -o 'cardinality ≈ [0-9]*' "$tmp/fused-mt.txt" | grep -o '[0-9]*$')
awk -v a="$split_total" -v b="$fused_total" \
  'BEGIN { d = (a - b) / a; if (d < 0) d = -d; exit !(d < 0.001) }' || {
  echo "sharded fused total $fused_total deviates from split $split_total"; exit 1;
}
# Unsupported combination must fail loudly, not fall back silently.
if ./target/release/freesketch estimate "$tmp/big.fedge" --layout fused \
     --checkpoint "$tmp/nope.fsnp" > /dev/null 2>&1; then
  echo "fused + --checkpoint should be rejected"; exit 1
fi

echo "==> ingest throughput smoke (1M synthetic edges through the batch path)"
./target/release/exp_ingest --quick --json --out "$tmp/BENCH_ingest.json" \
  --threads 2 --scaling-out "$tmp/BENCH_scaling.json"
test -s "$tmp/BENCH_ingest.json" || { echo "exp_ingest wrote no JSON"; exit 1; }
grep -q '"mode": "batch"' "$tmp/BENCH_ingest.json" || {
  echo "exp_ingest JSON missing batch results"; exit 1;
}
grep -q '"mode": "file-fedge"' "$tmp/BENCH_ingest.json" || {
  echo "exp_ingest JSON missing from-disk results"; exit 1;
}
grep -q '"mode": "batch-fused"' "$tmp/BENCH_ingest.json" || {
  echo "exp_ingest JSON missing fused-layout results"; exit 1;
}
grep -q '"available_parallelism"' "$tmp/BENCH_ingest.json" || {
  echo "exp_ingest JSON missing host context"; exit 1;
}
# 2-thread sharded-ingest smoke: the scaling JSON must carry both thread
# counts for both sharded methods.
test -s "$tmp/BENCH_scaling.json" || { echo "exp_ingest wrote no scaling JSON"; exit 1; }
grep -q '"method": "ShardedFreeBS", "threads": 2' "$tmp/BENCH_scaling.json" || {
  echo "scaling JSON missing 2-thread sharded results"; exit 1;
}

echo "==> batch-tuning sweep smoke (layout x block x warm-ahead frontier)"
./target/release/exp_ingest --quick --sweep --json \
  --sweep-out "$tmp/BENCH_sweep.json" > /dev/null
grep -q '"frontier"' "$tmp/BENCH_sweep.json" || {
  echo "sweep JSON missing frontier"; exit 1;
}
grep -q '"layout": "fused"' "$tmp/BENCH_sweep.json" || {
  echo "sweep JSON missing fused-layout runs"; exit 1;
}

echo "==> serve daemon smoke (socket protocol, port conflict, shutdown drain)"
./target/release/freesketch serve "$tmp/edges.tsv" --port 0 --threads 2 \
  --checkpoint "$tmp/serve.fsnp" > "$tmp/serve-out.txt" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$tmp/serve-out.txt")
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || {
  echo "serve daemon never reported its port:"; cat "$tmp/serve-out.txt";
  kill "$serve_pid" 2> /dev/null || true; exit 1;
}
# A second daemon on the taken port must fail fast with a nonzero exit.
if ./target/release/freesketch serve "$tmp/edges.tsv" --port "$port" > /dev/null 2>&1; then
  echo "second daemon on a taken port should exit nonzero"; exit 1
fi
# Three queries, one malformed line, and a shutdown over bash /dev/tcp.
exec 3<> "/dev/tcp/127.0.0.1/$port"
printf 'STATS\nESTIMATE alice\nTOPK 2\nBOGUS\nSHUTDOWN\n' >&3
read -r reply <&3
case "$reply" in "OK edges="*) ;; *) echo "bad STATS reply: $reply"; exit 1;; esac
read -r reply <&3
case "$reply" in "OK "*) ;; *) echo "bad ESTIMATE reply: $reply"; exit 1;; esac
read -r reply <&3
case "$reply" in "OK 2 #"*) ;; *) echo "bad TOPK reply: $reply"; exit 1;; esac
read -r reply <&3
case "$reply" in "ERR unknown-command"*) ;; *) echo "bad error reply: $reply"; exit 1;; esac
read -r reply <&3
case "$reply" in "OK draining"*) ;; *) echo "bad SHUTDOWN reply: $reply"; exit 1;; esac
exec 3<&- 3>&-
wait "$serve_pid" || {
  echo "serve daemon exited nonzero:"; cat "$tmp/serve-out.txt"; exit 1;
}
grep -q "drained:" "$tmp/serve-out.txt" || {
  echo "serve daemon never printed its drain report:"; cat "$tmp/serve-out.txt"; exit 1;
}
# The drain wrote a final checkpoint that restores cleanly.
test -s "$tmp/serve.fsnp" || { echo "serve left no final checkpoint"; exit 1; }
./target/release/freesketch restore "$tmp/serve.fsnp" > /dev/null

echo "==> serve latency-under-load smoke (BENCH_serve.json)"
./target/release/exp_serve --quick --json --out "$tmp/BENCH_serve.json" > /dev/null
test -s "$tmp/BENCH_serve.json" || { echo "exp_serve wrote no JSON"; exit 1; }
for key in '"ingest_edges_per_s"' '"query_p50_us"' '"query_p99_us"' \
           '"verb": "ESTIMATE"' '"verb": "TOPK"' '"available_parallelism"'; do
  grep -q "$key" "$tmp/BENCH_serve.json" || {
    echo "BENCH_serve.json missing $key"; exit 1;
  }
done

echo "verify: OK"
